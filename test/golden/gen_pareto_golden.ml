(* Golden snapshot of the committed 243-point design space's Pareto
   front, computed by the streaming engine.

   Pins three things at once: the index -> config bijection of
   [Config_space.default] (names appear verbatim), the model's ranking
   of the space (front membership and order), and the streaming
   accumulator sums.  Any model or engine change that moves the front
   shows up as a reviewable `dune promote` diff. *)

let seed = 1
let n_instructions = 30_000
let pf fmt = Printf.printf fmt

let () =
  let spec = Benchmarks.find "gcc" in
  let profile = Profiler.profile spec ~seed ~n_instructions in
  let space = Config_space.default in
  let s =
    Fault.or_raise
      (Sweep.model_sweep_stream ~block_size:64 ~profile space)
  in
  pf "workload: gcc  seed: %d  instructions: %d\n" seed n_instructions;
  pf "space: %s  points: %d  ok: %d  failed: %d\n\n" (Config_space.name space)
    s.Sweep.ss_n_points s.ss_ok s.ss_failed;
  pf "sums: cpi %.6e  watts %.6e  seconds %.6e  energy %.6e\n"
    s.ss_sum_cpi s.ss_sum_watts s.ss_sum_seconds s.ss_sum_energy_j;
  (match s.ss_best_seconds with
  | Some (id, v) -> pf "best seconds: %d  %.6e\n" id v
  | None -> ());
  (match s.ss_best_energy with
  | Some (id, v) -> pf "best energy:  %d  %.6e\n" id v
  | None -> ());
  (match s.ss_best_ed2p with
  | Some (id, v) -> pf "best ed2p:    %d  %.6e\n" id v
  | None -> ());
  pf "\npareto front (%d points):\n" (List.length s.ss_front);
  List.iter
    (fun (e : Sweep.eval) ->
      pf "  %3d  %-32s  %.6e s  %.4f W  cpi %.4f\n" e.sw_index
        e.sw_config.Uarch.name e.sw_seconds e.sw_watts e.sw_cpi)
    s.ss_front_evals
