(* Golden snapshot of the trained calibration model for the three
   checked-in workload files over the quick design matrix at a small
   instruction budget.

   Pins the whole calibration pipeline at once: the workload statistics
   ({!Validate.profile_stats}), the feature vector, the deterministic
   train/holdout split, the closed-form ridge solve and the boosted
   stumps — every main-model coefficient appears verbatim as a hex
   float, so any numeric drift anywhere upstream shows up as a
   reviewable `dune promote` diff. *)

let seed = 1
let n_instructions = 8_000
let pf fmt = Printf.printf fmt

let () =
  let specs =
    List.map
      (fun path -> Fault.or_raise (Workload_parser.load path))
      (List.tl (Array.to_list Sys.argv))
  in
  let configs = Validate.matrix_configs `Quick in
  let reports =
    List.map
      (fun spec ->
        Fault.or_raise
          (Validate.run_workload ~jobs:1 ~seed ~n_instructions ~spec configs))
      specs
  in
  let rows = Validate.matrix_of_report (Validate.summarize reports) in
  let model, ev = Fault.or_raise (Calibrate.train rows) in
  pf "matrix: quick x %d workloads  seed: %d  instructions: %d  rows: %d\n"
    (List.length specs) seed n_instructions (List.length rows);
  pf "features: %d  folds: %d  split seed: %d  holdout: %g\n"
    (List.length model.Calibrate.c_feature_names)
    model.c_folds model.c_split_seed model.c_holdout;
  pf "train:   %2d points  mape %.6f -> %.6f\n" ev.Calibrate.ev_train.se_n
    ev.ev_train.se_uncal_mape ev.ev_train.se_cal_mape;
  pf "holdout: %2d points  mape %.6f -> %.6f\n" ev.ev_holdout.se_n
    ev.ev_holdout.se_uncal_mape ev.ev_holdout.se_cal_mape;
  pf "holdout points:\n";
  List.iter (fun n -> pf "  %s\n" n) model.c_holdout_names;
  pf "\nmain model (ridge weights as hex floats, then stumps):\n";
  List.iteri
    (fun i comp ->
      let cm = model.c_components.(i) in
      pf "component %s: %d stumps\n" (Cpi_stack.to_string comp)
        (List.length cm.Calibrate.cm_stumps);
      List.iteri
        (fun j name -> pf "  %-28s %h\n" name cm.cm_ridge.(j))
        model.c_feature_names;
      List.iteri
        (fun j (st : Stumps.stump) ->
          pf "  stump %2d: f%d <= %h ? %h : %h\n" j st.st_feature
            st.st_threshold st.st_left st.st_right)
        cm.cm_stumps)
    Cpi_stack.all;
  pf "\nserialized model crc32: %s\n" (Crc32.to_hex (Crc32.string (Calibrate.to_string model)))
