(* Golden-snapshot generator.

   Renders everything numeric drift should be visible in — the profile's
   headline statistics, both engines' keyed CPI stacks, and both power
   stacks — for one workload file, deterministically (fixed seed, fixed
   instruction budget, fixed decimals).  The dune rules diff this output
   against the checked-in *.expected files under `dune runtest`, so any
   change to profiler, model, simulator or power model shows up as a
   reviewable `dune promote` diff instead of silently shifting results.

   Four decimals keeps the diff readable while still catching relative
   drift of ~1e-4 on O(1) quantities — far below the model-error scale
   anyone could tune against. *)

let seed = 1
let n_instructions = 30_000

let pf fmt = Printf.printf fmt

let print_stack label stack =
  pf "%s:\n" label;
  List.iter
    (fun (name, v) -> pf "  %-8s %10.4f\n" name v)
    (Cpi_stack.labeled_alist stack);
  pf "  %-8s %10.4f\n" "total" (Cpi_stack.total stack)

let print_power label (b : Power.breakdown) =
  pf "%s:\n" label;
  List.iter
    (fun (c, w) -> pf "  %-16s %10.4f W\n" (Power.component_to_string c) w)
    b.components;
  pf "  %-16s %10.4f W\n" "total" b.total_watts

let () =
  let path = Sys.argv.(1) in
  let spec = Fault.or_raise (Workload_parser.load path) in
  let profile = Profiler.profile spec ~seed ~n_instructions in
  let u = Uarch.reference in
  let pred = Interval_model.predict u profile in
  let sim = Simulator.run u spec ~seed ~n_instructions in
  pf "workload: %s\n" spec.Workload_spec.wname;
  pf "seed: %d  instructions: %d  uarch: %s\n\n" seed n_instructions u.name;
  pf "profile:\n";
  pf "  uops/instruction   %8.4f\n" profile.p_uops_per_instruction;
  pf "  branch fraction    %8.4f\n" profile.p_branch_fraction;
  pf "  branch entropy     %8.4f\n" profile.p_entropy;
  pf "  data accesses      %8d\n" profile.p_data_accesses;
  pf "  data cold lines    %8d\n" profile.p_data_cold;
  pf "  inst cold fraction %8.4f\n" profile.p_inst_cold_fraction;
  pf "  microtraces        %8d\n" (Array.length profile.p_microtraces);
  pf "\n";
  print_stack "model CPI stack (per instruction)"
    (Interval_model.cpi_stack pred);
  pf "model CPI: %.4f\n\n" (Interval_model.cpi pred);
  print_stack "simulator CPI stack (per instruction)" (Sim_result.cpi_stack sim);
  pf "simulator CPI: %.4f\n\n" (Sim_result.cpi sim);
  print_power "model power stack" (Power.estimate u pred.pr_activity);
  pf "\n";
  print_power "simulator power stack" (Power.estimate u sim.r_activity)
