(* Tests for the StatStack statistical cache model. *)

let hist entries =
  let h = Histogram.create () in
  List.iter (fun (k, c) -> Histogram.add h ~count:c k) entries;
  h

let test_empty_histogram () =
  let ss = Statstack.of_reuse_histogram (hist []) in
  Alcotest.(check (float 1e-9)) "sd" 0.0 (Statstack.expected_stack_distance ss 100);
  Alcotest.(check (float 1e-9)) "no cold, no misses" 0.0
    (Statstack.miss_ratio ss ~cache_lines:4)

let test_empty_with_cold () =
  let ss = Statstack.of_reuse_histogram ~cold_fraction:0.3 (hist []) in
  Alcotest.(check (float 1e-9)) "cold floor" 0.3 (Statstack.miss_ratio ss ~cache_lines:4)

let test_all_zero_reuse () =
  (* rd = 0 everywhere: every reuse has stack distance 0, hits any cache. *)
  let ss = Statstack.of_reuse_histogram (hist [ (0, 100) ]) in
  Alcotest.(check (float 1e-9)) "sd(1)" 0.0 (Statstack.expected_stack_distance ss 1);
  Alcotest.(check (float 1e-9)) "all hit" 0.0 (Statstack.miss_ratio ss ~cache_lines:1)

let test_uniform_single_distance () =
  (* Every reuse has rd = 10: S(j) = 1 for j < 10, so sd(r) = min(r, 10).
     In a cyclic walk over 11 lines that is exactly right. *)
  let ss = Statstack.of_reuse_histogram (hist [ (10, 1000) ]) in
  Alcotest.(check (float 1e-6)) "sd(5)" 5.0 (Statstack.expected_stack_distance ss 5);
  Alcotest.(check (float 1e-6)) "sd(10)" 10.0 (Statstack.expected_stack_distance ss 10);
  Alcotest.(check (float 1e-6)) "sd saturates" 10.0
    (Statstack.expected_stack_distance ss 100);
  Alcotest.(check (float 1e-6)) "fits in 10 lines" 0.0
    (Statstack.miss_ratio ss ~cache_lines:10);
  Alcotest.(check (float 1e-6)) "misses in 9 lines" 1.0
    (Statstack.miss_ratio ss ~cache_lines:9)

let test_mixture () =
  (* Half short (rd 2), half long (rd 100): a mid-size cache catches the
     short reuses only. *)
  let ss = Statstack.of_reuse_histogram (hist [ (2, 500); (100, 500) ]) in
  let m_small = Statstack.miss_ratio ss ~cache_lines:1 in
  let m_mid = Statstack.miss_ratio ss ~cache_lines:30 in
  let m_big = Statstack.miss_ratio ss ~cache_lines:200 in
  Alcotest.(check bool) "small cache misses a lot" true (m_small > 0.9);
  Alcotest.(check bool) "mid cache catches short" true
    (m_mid > 0.4 && m_mid < 0.6);
  Alcotest.(check (float 1e-9)) "big cache catches all" 0.0 m_big

let test_cold_added_on_top () =
  let ss = Statstack.of_reuse_histogram ~cold_fraction:0.2 (hist [ (2, 100) ]) in
  (* reuses all hit a big cache, only cold misses remain *)
  Alcotest.(check (float 1e-9)) "cold only" 0.2 (Statstack.miss_ratio ss ~cache_lines:100)

let test_capacity_boundary_exactly_cold () =
  (* Regression: with [total_reuses > 0], a cache whose capacity reaches
     the largest expected stack distance must return *exactly* [cold]
     (inclusive boundary), not an approximation of it.  All reuses at
     rd = 8 make E[sd] saturate at exactly 8.0. *)
  let ss = Statstack.of_reuse_histogram ~cold_fraction:0.25 (hist [ (8, 400) ]) in
  Alcotest.(check (float 0.0)) "capacity = max E[sd]: exactly cold" 0.25
    (Statstack.miss_ratio ss ~cache_lines:8);
  Alcotest.(check (float 0.0)) "capacity beyond max rd: exactly cold" 0.25
    (Statstack.miss_ratio ss ~cache_lines:1_000_000);
  Alcotest.(check (float 1e-9)) "one line short: every reuse misses" 1.0
    (Statstack.miss_ratio ss ~cache_lines:7);
  (* same boundary without cold misses: exactly 0.0 *)
  let warm = Statstack.of_reuse_histogram (hist [ (8, 400) ]) in
  Alcotest.(check (float 0.0)) "no cold: exactly zero" 0.0
    (Statstack.miss_ratio warm ~cache_lines:8)

let test_rejects_bad_inputs () =
  Alcotest.check_raises "negative rd"
    (Invalid_argument "Statstack.of_reuse_histogram: negative reuse distance")
    (fun () -> ignore (Statstack.of_reuse_histogram (hist [ (-1, 5) ])));
  Alcotest.check_raises "bad cold"
    (Invalid_argument "Statstack.of_reuse_histogram: cold_fraction out of range")
    (fun () -> ignore (Statstack.of_reuse_histogram ~cold_fraction:1.5 (hist [])))

let test_accessors () =
  let ss = Statstack.of_reuse_histogram ~cold_fraction:0.1 (hist [ (3, 7) ]) in
  Alcotest.(check (float 1e-9)) "cold" 0.1 (Statstack.cold_fraction ss);
  Alcotest.(check int) "reuses" 7 (Statstack.reuse_count ss)

let test_miss_ratio_for_level () =
  let lvl : Uarch.cache_level =
    { size_bytes = 10 * 64; assoc = 2; line_bytes = 64; latency = 1 }
  in
  let ss = Statstack.of_reuse_histogram (hist [ (10, 100) ]) in
  Alcotest.(check (float 1e-9)) "10 lines fit" 0.0 (Statstack.miss_ratio_for ss lvl)

let test_against_lru_simulation_cyclic () =
  (* Cyclic walk over N lines: an LRU cache of >= N lines gets all hits
     after warmup, < N lines gets all misses.  StatStack must agree. *)
  let n = 32 in
  let trace = List.init 2000 (fun i -> (i mod n) * 64) in
  (* measure reuse distances *)
  let h = Histogram.create () in
  let last = Hashtbl.create 64 in
  List.iteri
    (fun i addr ->
      let line = addr / 64 in
      (match Hashtbl.find_opt last line with
      | Some p -> Histogram.add h (i - p - 1)
      | None -> ());
      Hashtbl.replace last line i)
    trace;
  let ss = Statstack.of_reuse_histogram h in
  Alcotest.(check (float 0.01)) "fits exactly" 0.0
    (Statstack.miss_ratio ss ~cache_lines:n);
  Alcotest.(check (float 0.01)) "thrashes below" 1.0
    (Statstack.miss_ratio ss ~cache_lines:(n - 2))

let test_against_lru_simulation_random () =
  (* Random accesses over a working set: StatStack's miss ratio should be
     within a few points of a simulated fully-associative LRU. *)
  let lines = 256 in
  let rng = Rng.create 9 in
  let trace = List.init 40_000 (fun _ -> Rng.int rng lines * 64) in
  let h = Histogram.create () in
  let last = Hashtbl.create 64 in
  let cold = ref 0 and accesses = ref 0 in
  List.iteri
    (fun i addr ->
      incr accesses;
      let line = addr / 64 in
      (match Hashtbl.find_opt last line with
      | Some p -> Histogram.add h (i - p - 1)
      | None -> incr cold);
      Hashtbl.replace last line i)
    trace;
  let cold_fraction = float_of_int !cold /. float_of_int !accesses in
  let ss = Statstack.of_reuse_histogram ~cold_fraction h in
  List.iter
    (fun cache_lines ->
      (* simulate a fully-associative LRU of that many lines *)
      let cache =
        Cache.create
          { size_bytes = cache_lines * 64; assoc = cache_lines; line_bytes = 64;
            latency = 1 }
      in
      let misses = ref 0 in
      List.iter
        (fun a -> if Cache.access cache a <> Cache.Hit then incr misses)
        trace;
      let simulated = float_of_int !misses /. float_of_int (List.length trace) in
      let predicted = Statstack.miss_ratio ss ~cache_lines in
      Alcotest.(check bool)
        (Printf.sprintf "lines=%d sim=%.3f pred=%.3f" cache_lines simulated predicted)
        true
        (Float.abs (simulated -. predicted) < 0.08))
    [ 32; 64; 128; 300 ]

let prop_sd_monotone_and_bounded =
  QCheck.Test.make ~name:"expected stack distance is monotone and <= rd" ~count:100
    QCheck.(small_list (pair (int_range 0 500) (int_range 1 50)))
    (fun entries ->
      let ss = Statstack.of_reuse_histogram (hist entries) in
      let ok = ref true in
      let prev = ref 0.0 in
      for r = 0 to 600 do
        let sd = Statstack.expected_stack_distance ss r in
        if sd < !prev -. 1e-9 then ok := false;
        if sd > float_of_int r +. 1e-9 then ok := false;
        prev := sd
      done;
      !ok)

let prop_miss_ratio_monotone_in_size =
  QCheck.Test.make ~name:"miss ratio non-increasing in cache size" ~count:100
    QCheck.(
      pair
        (small_list (pair (int_range 0 500) (int_range 1 50)))
        (float_range 0.0 0.5))
    (fun (entries, cold) ->
      let ss = Statstack.of_reuse_histogram ~cold_fraction:cold (hist entries) in
      let ok = ref true in
      let prev = ref 1.1 in
      List.iter
        (fun size ->
          let m = Statstack.miss_ratio ss ~cache_lines:size in
          if m > !prev +. 1e-9 then ok := false;
          if m < cold -. 1e-9 then ok := false;
          prev := m)
        [ 1; 2; 4; 8; 16; 32; 64; 128; 256; 512 ];
      !ok)

(* The production [miss_ratio] finds the smallest r with
   E[sd(r)] > capacity by a two-level binary search.  Restate it as the
   textbook linear scan over the public API and demand bit-identical
   results — this is the equivalence proof obligation of the O(log n)
   rewrite, checked instead of assumed. *)
let reference_miss_ratio ss ~max_rd ~cache_lines =
  if cache_lines <= 0 then 1.0
  else if Statstack.reuse_count ss = 0 then Statstack.cold_fraction ss
  else begin
    let capacity = float_of_int cache_lines in
    if Statstack.expected_stack_distance ss max_rd <= capacity then
      Statstack.cold_fraction ss
    else begin
      let r = ref 1 in
      while Statstack.expected_stack_distance ss !r <= capacity do incr r done;
      let cold = Statstack.cold_fraction ss in
      cold +. ((1.0 -. cold) *. Statstack.survival ss (!r - 1))
    end
  end

let prop_miss_ratio_matches_linear_reference =
  QCheck.Test.make
    ~name:"binary-search miss ratio bit-identical to linear reference"
    ~count:300
    QCheck.(
      pair
        (small_list (pair (int_range 0 2000) (int_range 1 50)))
        (float_range 0.0 0.5))
    (fun (entries, cold) ->
      QCheck.assume (entries <> []);
      let ss = Statstack.of_reuse_histogram ~cold_fraction:cold (hist entries) in
      let max_rd = 1 + List.fold_left (fun m (k, _) -> max m k) 0 entries in
      List.for_all
        (fun size ->
          Statstack.miss_ratio ss ~cache_lines:size
          = reference_miss_ratio ss ~max_rd ~cache_lines:size)
        [ 0; 1; 2; 3; 5; 8; 13; 30; 100; 317; 1000; 2500 ])

let () =
  Alcotest.run "statstack"
    [
      ( "statstack",
        [
          Alcotest.test_case "empty" `Quick test_empty_histogram;
          Alcotest.test_case "empty with cold" `Quick test_empty_with_cold;
          Alcotest.test_case "all zero reuse" `Quick test_all_zero_reuse;
          Alcotest.test_case "uniform distance" `Quick test_uniform_single_distance;
          Alcotest.test_case "mixture" `Quick test_mixture;
          Alcotest.test_case "cold on top" `Quick test_cold_added_on_top;
          Alcotest.test_case "capacity boundary exactly cold" `Quick
            test_capacity_boundary_exactly_cold;
          Alcotest.test_case "rejects bad inputs" `Quick test_rejects_bad_inputs;
          Alcotest.test_case "accessors" `Quick test_accessors;
          Alcotest.test_case "miss_ratio_for" `Quick test_miss_ratio_for_level;
          Alcotest.test_case "matches LRU on cyclic walk" `Quick
            test_against_lru_simulation_cyclic;
          Alcotest.test_case "matches LRU on random trace" `Quick
            test_against_lru_simulation_random;
          QCheck_alcotest.to_alcotest prop_sd_monotone_and_bounded;
          QCheck_alcotest.to_alcotest prop_miss_ratio_monotone_in_size;
          QCheck_alcotest.to_alcotest prop_miss_ratio_matches_linear_reference;
        ] );
    ]
