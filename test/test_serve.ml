(* The serving layer: retry schedule, wire protocol (including a
   corruption fuzzer), and the live daemon end to end — fault isolation,
   admission control, deadlines, degraded mode and graceful drain. *)

(* ---- Retry ---- *)

let test_retry_backoff_schedule () =
  (* Deterministic, jitterless: 1ms doubling to a 100ms ceiling. *)
  List.iteri
    (fun attempt expected ->
      Alcotest.(check (float 1e-12))
        (Printf.sprintf "backoff %d" attempt)
        expected
        (Retry.backoff_s ~attempt))
    [ 0.001; 0.002; 0.004; 0.008; 0.016; 0.032; 0.064; 0.1; 0.1; 0.1 ]

let test_retry_transient_classification () =
  Alcotest.(check bool) "EINTR" true
    (Retry.is_transient (Unix.Unix_error (Unix.EINTR, "read", "")));
  Alcotest.(check bool) "EAGAIN" true
    (Retry.is_transient (Unix.Unix_error (Unix.EAGAIN, "read", "")));
  Alcotest.(check bool) "EBADF is fatal" false
    (Retry.is_transient (Unix.Unix_error (Unix.EBADF, "read", "")));
  Alcotest.(check bool) "non-unix is fatal" false
    (Retry.is_transient Exit)

let test_retry_gives_up () =
  (* A persistently-EAGAIN operation must exhaust its budget, not spin. *)
  let calls = ref 0 in
  match
    Retry.with_retries ~attempts:3 ~what:"test" (fun () ->
        incr calls;
        raise (Unix.Unix_error (Unix.EAGAIN, "test", "")))
  with
  | _ -> Alcotest.fail "expected Unix_error"
  | exception Unix.Unix_error (Unix.EAGAIN, what, _) ->
    Alcotest.(check int) "attempts bounded" 4 !calls;
    Alcotest.(check bool) "labelled exhausted" true
      (String.length what >= 4)

(* ---- Protocol codecs ---- *)

let roundtrip_request env =
  match Protocol.decode_request (Protocol.encode_request env) with
  | Ok back -> back
  | Error f -> Alcotest.failf "decode_request: %s" (Fault.to_string f)

let test_request_roundtrip () =
  List.iter
    (fun env ->
      Alcotest.(check bool)
        "request round-trips" true
        (roundtrip_request env = env))
    [
      { Protocol.rq_seq = 1; rq_timeout_ms = None; rq_body = Ping };
      { rq_seq = 2; rq_timeout_ms = Some 250; rq_body = Health };
      { rq_seq = 3; rq_timeout_ms = None; rq_body = Crash };
      {
        rq_seq = 4;
        rq_timeout_ms = Some 0;
        rq_body =
          Predict
            { rq_profile = "abc123"; rq_config = "reference";
              rq_prefetch = true };
      };
      {
        rq_seq = 5;
        rq_timeout_ms = None;
        rq_body =
          Sweep
            { rq_profile = "def"; rq_space = "default"; rq_offset = 17;
              rq_limit = 64 };
      };
      (* raw bytes survive, including newlines and NULs *)
      { rq_seq = 6; rq_timeout_ms = None;
        rq_body = Load "line1\nline2\x00binary\xff" };
    ]

let test_reply_roundtrip () =
  (* Fault payloads round-trip through their wire line: Timeout and
     Overload exactly (their payload is the message), Bad_input with its
     context/line folded into the message (same lossy rendering the
     checkpoint log documents) — but always the same fault class. *)
  let equivalent (a : Protocol.reply_envelope) (b : Protocol.reply_envelope) =
    a.rp_seq = b.rp_seq
    &&
    match (a.rp_body, b.rp_body) with
    | Ok_reply { rp_op = xo; rp_kv = xk }, Ok_reply { rp_op = yo; rp_kv = yk }
      ->
      xo = yo && xk = yk
    | Fault_reply (Fault.Timeout x), Fault_reply (Fault.Timeout y) -> x = y
    | Fault_reply (Fault.Overload x), Fault_reply (Fault.Overload y) -> x = y
    | Fault_reply x, Fault_reply y -> Fault.tag x = Fault.tag y
    | _ -> false
  in
  List.iter
    (fun env ->
      match Protocol.decode_reply (Protocol.encode_reply env) with
      | Ok back ->
        Alcotest.(check bool) "reply round-trips" true (equivalent back env)
      | Error f -> Alcotest.failf "decode_reply: %s" (Fault.to_string f))
    [
      { Protocol.rp_seq = 9;
        rp_body = Ok_reply { rp_op = "pong"; rp_kv = [] } };
      {
        rp_seq = 10;
        rp_body =
          Ok_reply
            { rp_op = "predict";
              rp_kv = [ Protocol.float_kv "cpi" 1.2345;
                        Protocol.float_kv "watts" 33.3 ] };
      };
      { rp_seq = 11; rp_body = Fault_reply (Fault.timeout "too slow") };
      { rp_seq = 12; rp_body = Fault_reply (Fault.overload "queue full") };
      { rp_seq = 0;
        rp_body =
          Fault_reply (Fault.bad_input ~context:"protocol" "frame CRC mismatch") };
    ]

let test_float_kv_exact () =
  List.iter
    (fun v ->
      let _, s = Protocol.float_kv "x" v in
      Alcotest.(check bool) "hex float is bit-exact" true
        (Int64.equal (Int64.bits_of_float v)
           (Int64.bits_of_float (float_of_string s))))
    [ 1.0 /. 3.0; 9.62061835; 1e-300; 0.0; 123456789.123456789 ]

let test_frame_roundtrip () =
  List.iter
    (fun payload ->
      let wire = Protocol.frame Request payload in
      match Protocol.decode_frame wire with
      | Ok (Protocol.Request, back, consumed) ->
        Alcotest.(check string) "payload" payload back;
        Alcotest.(check int) "consumed" (String.length wire) consumed
      | Ok _ -> Alcotest.fail "wrong kind"
      | Error f -> Alcotest.failf "decode_frame: %s" (Fault.to_string f))
    [ ""; "x"; "op ping\n"; String.make 100_000 '\xab' ]

(* ---- Corruption fuzzer ----

   Every mutation of a valid frame must yield a structured protocol
   fault from the pure decoder — never an exception, never a silent
   accept of corrupt bytes. *)

let valid_frame =
  Protocol.frame Request
    (Protocol.encode_request
       { rq_seq = 42; rq_timeout_ms = Some 100; rq_body = Ping })

let expect_fault what buf =
  match Protocol.decode_frame buf with
  | Ok _ -> Alcotest.failf "%s: corrupt frame accepted" what
  | Error (Fault.Bad_input { context = "protocol"; _ }) -> ()
  | Error f ->
    Alcotest.failf "%s: wrong fault class %s" what (Fault.to_string f)
  | exception e ->
    Alcotest.failf "%s: decoder raised %s" what (Printexc.to_string e)

let test_fuzz_truncations () =
  for len = 0 to String.length valid_frame - 1 do
    expect_fault
      (Printf.sprintf "truncated to %d" len)
      (String.sub valid_frame 0 len)
  done

let test_fuzz_bit_flips () =
  (* Flip one bit in every byte position: header corruption desyncs,
     payload/CRC corruption fails the checksum — all structured. *)
  let n = String.length valid_frame in
  for pos = 0 to n - 1 do
    for bit = 0 to 7 do
      let b = Bytes.of_string valid_frame in
      Bytes.set b pos
        (Char.chr (Char.code (Bytes.get b pos) lxor (1 lsl bit)));
      expect_fault
        (Printf.sprintf "bit %d of byte %d flipped" bit pos)
        (Bytes.to_string b)
    done
  done

let test_fuzz_oversized_length () =
  (* A hostile length prefix must be rejected by the cap, not allocated. *)
  let b = Bytes.of_string valid_frame in
  Bytes.set b 6 '\xff';
  Bytes.set b 7 '\xff';
  Bytes.set b 8 '\xff';
  Bytes.set b 9 '\x7f';
  expect_fault "2GB declared length" (Bytes.to_string b)

let prop_fuzz_random_mutations =
  QCheck.Test.make ~name:"random frame mutations never crash the decoder"
    ~count:500
    QCheck.(
      triple (int_range 0 (String.length valid_frame - 1)) (int_range 0 255)
        small_string)
    (fun (pos, byte, tail) ->
      let b = Bytes.of_string (valid_frame ^ tail) in
      Bytes.set b pos (Char.chr byte);
      (match Protocol.decode_frame (Bytes.to_string b) with
       | Ok (_, payload, _) ->
         (* Only reachable when the mutation was a no-op byte. *)
         ignore payload
       | Error (Fault.Bad_input _) -> ()
       | Error _ -> QCheck.Test.fail_report "non-protocol fault");
      true)

(* ---- Live daemon ---- *)

let profile =
  lazy (Profiler.profile (Benchmarks.find "gcc") ~seed:1 ~n_instructions:50_000)

let profile_bytes = lazy (Profile_io.to_string (Lazy.force profile))

let sock_counter = ref 0

let with_server ?(cfg = Server.default_config) f =
  incr sock_counter;
  let path =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "mipp-t%d-%d.sock" (Unix.getpid ()) !sock_counter)
  in
  let server =
    Fault.or_raise (Server.start { cfg with socket_path = Some path })
  in
  Fun.protect
    ~finally:(fun () ->
      Server.stop server;
      Server.join server;
      try Unix.unlink path with Unix.Unix_error _ -> ())
    (fun () -> f path server)

let with_client path f =
  let client = Fault.or_raise (Client.connect_unix path) in
  Fun.protect ~finally:(fun () -> Client.close client) (fun () -> f client)

let ok = function
  | Ok v -> v
  | Error f -> Alcotest.failf "unexpected fault: %s" (Fault.to_string f)

let health_int client key =
  let kv = ok (Client.health client) in
  match List.assoc_opt key kv with
  | Some v -> int_of_string v
  | None -> Alcotest.failf "health reply missing %s" key

let rec poll_until ?(tries = 100) what pred =
  if tries = 0 then Alcotest.failf "timed out waiting for %s" what
  else if pred () then ()
  else begin
    Thread.delay 0.05;
    poll_until ~tries:(tries - 1) what pred
  end

let test_serve_predict_exact () =
  with_server (fun path _server ->
      with_client path (fun client ->
          ok (Client.ping client);
          let key = ok (Client.load client (Lazy.force profile_bytes)) in
          Alcotest.(check string) "content key is the md5"
            (Digest.to_hex (Digest.string (Lazy.force profile_bytes)))
            key;
          (* Loading the same bytes again is a cheap cache hit, same key. *)
          Alcotest.(check string) "idempotent load" key
            (ok (Client.load client (Lazy.force profile_bytes)));
          let pr =
            ok (Client.predict client ~profile:key ~config:"reference" ())
          in
          (* The daemon must answer bit-identically to calling the model
             in-process: same profile, same config, hex-float wire format. *)
          let u = Fault.or_raise (Uarch.of_name "reference") in
          let pred = Interval_model.predict u (Lazy.force profile) in
          let ev = Sweep.of_prediction u ~index:0 pred in
          Alcotest.(check bool) "CPI bit-exact" true
            (Int64.equal
               (Int64.bits_of_float pr.Client.pr_cpi)
               (Int64.bits_of_float ev.Sweep.sw_cpi));
          Alcotest.(check bool) "watts bit-exact" true
            (Int64.equal
               (Int64.bits_of_float pr.pr_watts)
               (Int64.bits_of_float ev.sw_watts));
          Alcotest.(check bool) "ed2p bit-exact" true
            (Int64.equal
               (Int64.bits_of_float pr.pr_ed2p)
               (Int64.bits_of_float ev.sw_ed2p));
          let stack_total =
            List.fold_left (fun acc (_, v) -> acc +. v) 0.0 pr.pr_stack
          in
          Alcotest.(check (float 1e-6)) "stack sums to CPI" pr.pr_cpi
            stack_total))

let calibrator =
  lazy
    (let report =
       Fault.or_raise
         (Validate.run_workload ~jobs:2 ~seed:1 ~n_instructions:8_000
            ~spec:(Benchmarks.find "gcc")
            (Validate.matrix_configs `Quick))
     in
     let rows = Validate.matrix_of_report (Validate.summarize [ report ]) in
     match Calibrate.train rows with
     | Ok (m, _) -> m
     | Error ft -> Alcotest.failf "train: %s" (Fault.to_string ft))

let test_serve_calibrated_predict_exact () =
  (* A daemon configured with a calibration model must answer exactly
     what applying the model in-process yields: same calibrated cycles,
     same calibrated stack, down to the bit (hex-float wire format). *)
  let cal = Lazy.force calibrator in
  with_server
    ~cfg:{ Server.default_config with calibrator = Some cal }
    (fun path _server ->
      with_client path (fun client ->
          let key = ok (Client.load client (Lazy.force profile_bytes)) in
          let pr =
            ok (Client.predict client ~profile:key ~config:"reference" ())
          in
          let u = Fault.or_raise (Uarch.of_name "reference") in
          let p = Lazy.force profile in
          let pred = Interval_model.predict u p in
          let stats = Validate.profile_stats p in
          let cycles = Calibrate.calibrated_cycles cal ~stats u pred in
          Alcotest.(check bool) "calibrated cycles bit-exact" true
            (Int64.equal
               (Int64.bits_of_float pr.Client.pr_cycles)
               (Int64.bits_of_float cycles));
          let cal_stack, _ =
            Calibrate.apply_stack cal ~stats u
              (Interval_model.cpi_stack pred, Interval_model.cpi pred)
          in
          List.iter
            (fun comp ->
              let name = "stack_" ^ Cpi_stack.to_string comp in
              match List.assoc_opt (Cpi_stack.to_string comp) pr.pr_stack with
              | None -> Alcotest.failf "reply missing %s" name
              | Some v ->
                Alcotest.(check bool) (name ^ " bit-exact") true
                  (Int64.equal (Int64.bits_of_float v)
                     (Int64.bits_of_float (Cpi_stack.get cal_stack comp))))
            Cpi_stack.all;
          (* The calibrated reply must differ from the uncalibrated one
             somewhere, or the wiring is dead. *)
          let raw = Sweep.of_prediction u ~index:0 pred in
          Alcotest.(check bool) "calibration changed the cycles" false
            (Int64.equal
               (Int64.bits_of_float pr.pr_cycles)
               (Int64.bits_of_float raw.Sweep.sw_cycles))))

let test_serve_sweep_exact () =
  with_server (fun path _server ->
      with_client path (fun client ->
          let key = ok (Client.load client (Lazy.force profile_bytes)) in
          let points, faulted =
            ok
              (Client.sweep client ~profile:key ~space:"default" ~offset:40
                 ~limit:5 ())
          in
          Alcotest.(check int) "no faulted points" 0 faulted;
          Alcotest.(check int) "five points" 5 (List.length points);
          let space = Fault.or_raise (Config_space.find "default") in
          List.iteri
            (fun i (p : Client.sweep_point) ->
              let index = 40 + i in
              Alcotest.(check int) "index order" index p.sp_index;
              let u = Config_space.config_of_index space index in
              let ev =
                Sweep.of_prediction u ~index
                  (Interval_model.predict u (Lazy.force profile))
              in
              Alcotest.(check bool) "point CPI bit-exact" true
                (Int64.equal
                   (Int64.bits_of_float p.sp_cpi)
                   (Int64.bits_of_float ev.Sweep.sw_cpi)))
            points))

let test_serve_bad_requests_fault () =
  with_server (fun path _server ->
      with_client path (fun client ->
          (match Client.predict client ~profile:"feedfacefeedface" ~config:"reference" () with
           | Error (Fault.Bad_input _) -> ()
           | Error f -> Alcotest.failf "wrong fault: %s" (Fault.to_string f)
           | Ok _ -> Alcotest.fail "predict against unknown profile succeeded");
          let key = ok (Client.load client (Lazy.force profile_bytes)) in
          (match Client.predict client ~profile:key ~config:"not-a-config" () with
           | Error (Fault.Bad_input _) -> ()
           | Error f -> Alcotest.failf "wrong fault: %s" (Fault.to_string f)
           | Ok _ -> Alcotest.fail "unknown config accepted");
          (match
             Client.sweep client ~profile:key ~space:"default" ~offset:0
               ~limit:100_000 ()
           with
           | Error (Fault.Overload _) -> ()
           | Error f -> Alcotest.failf "wrong fault: %s" (Fault.to_string f)
           | Ok _ -> Alcotest.fail "oversized batch accepted");
          (* malformed profile bytes: structured fault, daemon healthy *)
          (match Client.load client "not a profile at all" with
           | Error (Fault.Bad_input _) -> ()
           | Error f -> Alcotest.failf "wrong fault: %s" (Fault.to_string f)
           | Ok _ -> Alcotest.fail "garbage profile accepted");
          ok (Client.ping client)))

let test_serve_deadline_timeout () =
  with_server (fun path _server ->
      with_client path (fun client ->
          let key = ok (Client.load client (Lazy.force profile_bytes)) in
          match
            Client.sweep client ~timeout_ms:0 ~profile:key ~space:"default"
              ~offset:0 ~limit:243 ()
          with
          | Error (Fault.Timeout _) -> ok (Client.ping client)
          | Error f -> Alcotest.failf "wrong fault: %s" (Fault.to_string f)
          | Ok _ -> Alcotest.fail "expired deadline still answered"))

let test_serve_overload_sheds () =
  let cfg = { Server.default_config with workers = 1; queue_capacity = 1 } in
  with_server ~cfg (fun path _server ->
      with_client path (fun client ->
          let key = ok (Client.load client (Lazy.force profile_bytes)) in
          (* Pipeline six whole-space sweeps without reading replies: one
             runs, one queues, the rest must shed with Overload — the
             queue is bounded, backpressure is explicit. *)
          let n = 6 in
          for seq = 100 to 99 + n do
            Protocol.write_frame (Client.fd client) Request
              (Protocol.encode_request
                 {
                   rq_seq = seq;
                   rq_timeout_ms = None;
                   rq_body =
                     Sweep
                       { rq_profile = key; rq_space = "default";
                         rq_offset = 0; rq_limit = 243 };
                 })
          done;
          let oks = ref 0 and overloads = ref 0 in
          for _ = 1 to n do
            match Protocol.read_frame (Client.fd client) with
            | Ok (Reply, payload) ->
              (match Fault.or_raise (Protocol.decode_reply payload) with
               | { rp_body = Ok_reply { rp_op = "sweep"; _ }; _ } -> incr oks
               | { rp_body = Fault_reply (Fault.Overload _); _ } ->
                 incr overloads
               | { rp_body = Fault_reply f; _ } ->
                 Alcotest.failf "wrong fault: %s" (Fault.to_string f)
               | _ -> Alcotest.fail "unexpected reply op")
            | _ -> Alcotest.fail "lost a reply"
          done;
          Alcotest.(check bool) "some work admitted" true (!oks >= 1);
          Alcotest.(check bool) "some work shed" true (!overloads >= 1);
          Alcotest.(check int) "every request answered" n (!oks + !overloads)))

let test_serve_corrupt_frame_keeps_connection () =
  with_server (fun path _server ->
      with_client path (fun client ->
          ok (Client.ping client);
          (* Valid header, CRC-corrupt payload: the server consumed the
             declared bytes, so the stream is in sync — it must fault and
             keep serving this very connection. *)
          let wire =
            Bytes.of_string
              (Protocol.frame Request
                 (Protocol.encode_request
                    { rq_seq = 7; rq_timeout_ms = None; rq_body = Ping }))
          in
          let mid = Bytes.length wire - 6 in
          Bytes.set wire mid
            (Char.chr (Char.code (Bytes.get wire mid) lxor 0x40));
          Retry.write_all (Client.fd client) wire 0 (Bytes.length wire);
          (match Protocol.read_frame (Client.fd client) with
           | Ok (Reply, payload) ->
             (match Fault.or_raise (Protocol.decode_reply payload) with
              | { rp_seq = 0; rp_body = Fault_reply (Fault.Bad_input _) } -> ()
              | _ -> Alcotest.fail "expected a protocol fault reply")
           | _ -> Alcotest.fail "no reply to corrupt frame");
          (* ...and the connection still works. *)
          ok (Client.ping client)))

let test_serve_desync_closes_connection () =
  with_server (fun path server ->
      ignore server;
      with_client path (fun client ->
          (* Garbage that cannot be framed: fault reply, then close. *)
          let garbage = "this is definitely not a MIPQ frame......" in
          Retry.write_all (Client.fd client)
            (Bytes.of_string garbage)
            0 (String.length garbage);
          (match Protocol.read_frame (Client.fd client) with
           | Ok (Reply, payload) ->
             (match Fault.or_raise (Protocol.decode_reply payload) with
              | { rp_body = Fault_reply (Fault.Bad_input _); _ } -> ()
              | _ -> Alcotest.fail "expected protocol fault")
           | Error _ -> ()  (* close can beat the reply; that's fine *)
           | Ok _ -> Alcotest.fail "unexpected frame");
          match Protocol.read_frame (Client.fd client) with
          | Error Protocol.Closed -> ()
          | Ok _ -> Alcotest.fail "connection survived desync"
          | Error _ -> ());
      (* The daemon itself survives and accepts fresh connections. *)
      with_client path (fun client -> ok (Client.ping client)))

let test_serve_slow_loris_dropped () =
  let cfg = { Server.default_config with recv_timeout_s = 0.15 } in
  with_server ~cfg (fun path _server ->
      with_client path (fun client ->
          (* Half a header, then silence: the mid-frame stall guard must
             drop the connection after recv_timeout_s. *)
          Retry.write_all (Client.fd client) (Bytes.of_string "MIP") 0 3;
          let deadline = Unix.gettimeofday () +. 5.0 in
          let rec drain () =
            match Protocol.read_frame (Client.fd client) with
            | Ok _ -> if Unix.gettimeofday () < deadline then drain ()
            | Error _ -> ()
          in
          drain ());
      (* Other clients are unaffected. *)
      with_client path (fun client -> ok (Client.ping client)))

let test_serve_crash_isolated_and_respawned () =
  let cfg =
    {
      Server.default_config with
      fault_injection = true;
      workers = 2;
      degraded_crash_threshold = 100 (* keep degraded mode out of this test *);
    }
  in
  with_server ~cfg (fun path _server ->
      with_client path (fun client ->
          let key = ok (Client.load client (Lazy.force profile_bytes)) in
          ok (Client.crash client);
          (* The daemon survives the worker death, keeps answering, and
             the supervisor replaces the dead domain. *)
          ok (Client.ping client);
          poll_until "respawn" (fun () -> health_int client "respawns" >= 1);
          Alcotest.(check bool) "crash counted" true
            (health_int client "crashes" >= 1);
          let pr =
            ok (Client.predict client ~profile:key ~config:"reference" ())
          in
          Alcotest.(check bool) "still predicting" true (pr.Client.pr_cpi > 0.0)))

let test_serve_degraded_mode_sheds_heavy () =
  let cfg =
    {
      Server.default_config with
      fault_injection = true;
      workers = 2;
      degraded_crash_threshold = 2;
      degraded_window_s = 30.0;
      degraded_cooldown_s = 0.7;
    }
  in
  with_server ~cfg (fun path _server ->
      with_client path (fun client ->
          let key = ok (Client.load client (Lazy.force profile_bytes)) in
          ok (Client.crash client);
          ok (Client.crash client);
          poll_until "degraded trip" (fun () ->
              List.assoc_opt "degraded" (ok (Client.health client))
              = Some "true");
          (* Heavy work is shed... *)
          (match
             Client.sweep client ~profile:key ~space:"default" ~offset:0
               ~limit:8 ()
           with
           | Error (Fault.Overload _) -> ()
           | Error f -> Alcotest.failf "wrong fault: %s" (Fault.to_string f)
           | Ok _ -> Alcotest.fail "degraded mode admitted a batch");
          (* ...while point queries keep flowing: graceful degradation,
             not an outage. *)
          ignore (ok (Client.predict client ~profile:key ~config:"reference" ()));
          (* The cooldown clears it. *)
          poll_until "cooldown clears" (fun () ->
              List.assoc_opt "degraded" (ok (Client.health client))
              = Some "false");
          let points, _ =
            ok
              (Client.sweep client ~profile:key ~space:"default" ~offset:0
                 ~limit:8 ())
          in
          Alcotest.(check int) "batches admitted again" 8 (List.length points)))

let test_serve_graceful_drain_completes_inflight () =
  with_server (fun path server ->
      with_client path (fun client ->
          let key = ok (Client.load client (Lazy.force profile_bytes)) in
          (* Fire a whole-space sweep and immediately ask for shutdown:
             the drain must finish the admitted request and deliver its
             reply before the connection is torn down. *)
          Protocol.write_frame (Client.fd client) Request
            (Protocol.encode_request
               {
                 rq_seq = 777;
                 rq_timeout_ms = None;
                 rq_body =
                   Sweep
                     { rq_profile = key; rq_space = "default"; rq_offset = 0;
                       rq_limit = 243 };
               });
          Server.stop server;
          (match Protocol.read_frame (Client.fd client) with
           | Ok (Reply, payload) ->
             (match Fault.or_raise (Protocol.decode_reply payload) with
              | { rp_seq = 777; rp_body = Ok_reply { rp_op = "sweep"; rp_kv } } ->
                Alcotest.(check (option string)) "all points evaluated"
                  (Some "243")
                  (List.assoc_opt "n" rp_kv)
              | _ -> Alcotest.fail "in-flight request lost in drain")
           | _ -> Alcotest.fail "no reply during drain");
          Server.join server))

let test_serve_abrupt_disconnect_harmless () =
  with_server (fun path _server ->
      (* Send a request and slam the connection without reading the
         reply; the daemon must shrug (EPIPE is a counted drop). *)
      (let client = Fault.or_raise (Client.connect_unix path) in
       let key_req =
         Protocol.encode_request
           { rq_seq = 1; rq_timeout_ms = None;
             rq_body = Load (Lazy.force profile_bytes) }
       in
       Protocol.write_frame (Client.fd client) Request key_req;
       Client.close client);
      with_client path (fun client ->
          ok (Client.ping client);
          poll_until "connection reaped" (fun () ->
              health_int client "connections_open" = 1)))

let () =
  Alcotest.run "serve"
    [
      ( "retry",
        [
          Alcotest.test_case "backoff schedule" `Quick
            test_retry_backoff_schedule;
          Alcotest.test_case "transient classification" `Quick
            test_retry_transient_classification;
          Alcotest.test_case "bounded attempts" `Quick test_retry_gives_up;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "request round-trip" `Quick test_request_roundtrip;
          Alcotest.test_case "reply round-trip" `Quick test_reply_roundtrip;
          Alcotest.test_case "hex floats bit-exact" `Quick test_float_kv_exact;
          Alcotest.test_case "frame round-trip" `Quick test_frame_roundtrip;
        ] );
      ( "fuzz",
        [
          Alcotest.test_case "truncations" `Quick test_fuzz_truncations;
          Alcotest.test_case "bit flips" `Quick test_fuzz_bit_flips;
          Alcotest.test_case "oversized length" `Quick
            test_fuzz_oversized_length;
          QCheck_alcotest.to_alcotest prop_fuzz_random_mutations;
        ] );
      ( "daemon",
        [
          Alcotest.test_case "predict bit-exact" `Quick test_serve_predict_exact;
          Alcotest.test_case "calibrated predict bit-exact" `Quick
            test_serve_calibrated_predict_exact;
          Alcotest.test_case "sweep bit-exact" `Quick test_serve_sweep_exact;
          Alcotest.test_case "bad requests fault" `Quick
            test_serve_bad_requests_fault;
          Alcotest.test_case "deadline timeout" `Quick
            test_serve_deadline_timeout;
          Alcotest.test_case "overload sheds" `Quick test_serve_overload_sheds;
          Alcotest.test_case "corrupt frame keeps connection" `Quick
            test_serve_corrupt_frame_keeps_connection;
          Alcotest.test_case "desync closes connection" `Quick
            test_serve_desync_closes_connection;
          Alcotest.test_case "slow-loris dropped" `Quick
            test_serve_slow_loris_dropped;
          Alcotest.test_case "crash isolated, worker respawned" `Quick
            test_serve_crash_isolated_and_respawned;
          Alcotest.test_case "degraded mode" `Quick
            test_serve_degraded_mode_sheds_heavy;
          Alcotest.test_case "graceful drain" `Quick
            test_serve_graceful_drain_completes_inflight;
          Alcotest.test_case "abrupt disconnect" `Quick
            test_serve_abrupt_disconnect_harmless;
        ] );
    ]
