(* The robustness layer: CRC-32, structured faults, fault-isolated
   parallel map, and the crash-tolerant checkpoint log. *)

(* ---- Crc32 ---- *)

let test_crc32_vectors () =
  (* The two standard IEEE 802.3 check values. *)
  Alcotest.(check string) "check value" "cbf43926"
    (Crc32.to_hex (Crc32.string "123456789"));
  Alcotest.(check string) "empty" "00000000" (Crc32.to_hex (Crc32.string ""));
  Alcotest.(check int) "incremental = whole"
    (Crc32.string "hello world")
    (Crc32.update (Crc32.string "hello ") "world" ~pos:0 ~len:5)

let test_crc32_hex_roundtrip () =
  List.iter
    (fun s ->
      let crc = Crc32.string s in
      match Crc32.of_hex (Crc32.to_hex crc) with
      | Some back -> Alcotest.(check int) ("hex round-trip " ^ s) crc back
      | None -> Alcotest.fail "of_hex rejected to_hex output")
    [ ""; "a"; "checkpoint line"; String.make 1000 'x' ];
  Alcotest.(check bool) "rejects junk" true (Crc32.of_hex "zzzzzzzz" = None);
  Alcotest.(check bool) "rejects short" true (Crc32.of_hex "abc" = None)

(* ---- Fault ---- *)

let test_fault_line_roundtrip () =
  let faults =
    [ Fault.bad_input ~line:7 ~context:"profile" "bad integer \"x\"";
      Fault.numeric "design point 3: non-finite watts (nan)";
      Fault.worker_crash (Failure "boom\nwith newline") (Printexc.get_callstack 0);
      Fault.timeout "per-request deadline exceeded";
      Fault.overload "admission queue full (64 pending)" ]
  in
  List.iter
    (fun ft ->
      let line = Fault.to_line ft in
      Alcotest.(check bool) "single line" false (String.contains line '\n');
      match String.index_opt line ' ' with
      | None -> Alcotest.fail "to_line has no tag separator"
      | Some i -> (
        let tag = String.sub line 0 i in
        let rest = String.sub line (i + 1) (String.length line - i - 1) in
        match Fault.of_line ~tag rest with
        | None -> Alcotest.failf "of_line rejected %S" line
        | Some back ->
          Alcotest.(check string) "tag survives" (Fault.tag ft) (Fault.tag back)))
    faults;
  Alcotest.(check bool) "unknown tag rejected" true
    (Fault.of_line ~tag:"martian" "msg" = None)

let test_serving_faults_roundtrip_exactly () =
  (* Timeout/Overload carry plain messages, so — unlike Worker_crash,
     which loses its exception identity — their round-trip through a log
     line or wire frame is exact. *)
  List.iter
    (fun ft ->
      let line = Fault.to_line ft in
      let i = String.index line ' ' in
      let tag = String.sub line 0 i in
      let rest = String.sub line (i + 1) (String.length line - i - 1) in
      match Fault.of_line ~tag rest with
      | Some back -> Alcotest.(check bool) ("exact: " ^ line) true (ft = back)
      | None -> Alcotest.failf "of_line rejected %S" line)
    [
      Fault.timeout "deadline exceeded after 250 ms";
      Fault.timeout "";
      Fault.overload "queue full";
      Fault.overload "degraded mode: batch requests shed";
    ]

(* ---- Parallel.map_result ---- *)

let test_map_result_isolation () =
  let f x = if x mod 3 = 0 then failwith ("bad " ^ string_of_int x) else x * x in
  List.iter
    (fun jobs ->
      let results = Parallel.map_result ~jobs f [ 1; 2; 3; 4; 5; 6; 7 ] in
      Alcotest.(check int) "length" 7 (List.length results);
      List.iteri
        (fun i r ->
          let x = i + 1 in
          match r with
          | Ok v ->
            Alcotest.(check bool) "ok only off-multiples" true (x mod 3 <> 0);
            Alcotest.(check int) "value" (x * x) v
          | Error (Fault.Worker_crash (Failure msg, _)) ->
            Alcotest.(check bool) "crash only on multiples" true (x mod 3 = 0);
            Alcotest.(check string) "message" ("bad " ^ string_of_int x) msg
          | Error ft ->
            Alcotest.failf "wrong fault kind: %s" (Fault.to_string ft))
        results)
    [ 1; 4 ]

let test_map_result_passes_faults_through () =
  (* A function raising [Fault.Error] keeps its fault untouched instead
     of being double-wrapped as a crash. *)
  let f x = if x = 2 then Fault.raise_error (Fault.numeric "nan cpi") else x in
  match Parallel.map_result f [ 1; 2 ] with
  | [ Ok 1; Error (Fault.Numeric "nan cpi") ] -> ()
  | _ -> Alcotest.fail "fault was rewrapped or reordered"

let prop_map_result_jobs_invariant =
  QCheck.Test.make ~name:"map_result verdicts independent of jobs" ~count:30
    QCheck.(pair (int_range 0 40) (int_range 2 6))
    (fun (n, jobs) ->
      let xs = List.init n Fun.id in
      let f x = if x mod 5 = 4 then failwith "die" else x + 1 in
      let strip = List.map (Result.map_error Fault.tag) in
      strip (Parallel.map_result ~jobs:1 f xs)
      = strip (Parallel.map_result ~jobs f xs))

(* ---- Checkpoint ---- *)

let with_temp f =
  let path = Filename.temp_file "mipp" ".ckpt" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) (fun () -> f path)

let numbers i =
  { Checkpoint.nm_cpi = 1.0 +. (0.125 *. float_of_int i);
    nm_cycles = float_of_int (1000 * i);
    nm_watts = 3.5;
    nm_seconds = 1e-6;
    nm_energy_j = 1e-5;
    nm_ed2p = 1e-17 }

let test_checkpoint_roundtrip () =
  with_temp (fun path ->
      Sys.remove path;
      let entries =
        [ { Checkpoint.e_index = 0; e_result = Ok (numbers 0) };
          { Checkpoint.e_index = 1;
            e_result = Error (Fault.numeric "non-finite watts") };
          { Checkpoint.e_index = 2; e_result = Ok (numbers 2) } ]
      in
      let t = Fault.or_raise (Checkpoint.open_ path ~n_configs:5 ~workload:"gcc") in
      Checkpoint.append t entries;
      Checkpoint.close t;
      match Checkpoint.load path with
      | Error ft -> Alcotest.failf "load failed: %s" (Fault.to_string ft)
      | Ok (n, w, back) ->
        Alcotest.(check int) "n_configs" 5 n;
        Alcotest.(check string) "workload" "gcc" w;
        Alcotest.(check int) "entries" 3 (List.length back);
        List.iter2
          (fun (a : Checkpoint.entry) (b : Checkpoint.entry) ->
            Alcotest.(check int) "index" a.e_index b.e_index;
            match (a.e_result, b.e_result) with
            | Ok x, Ok y ->
              (* hex floats round-trip bit-exactly *)
              Alcotest.(check bool) "numbers identical" true (x = y)
            | Error x, Error y ->
              Alcotest.(check string) "fault tag" (Fault.tag x) (Fault.tag y)
            | _ -> Alcotest.fail "Ok/Error mismatch")
          entries back)

let test_checkpoint_torn_tail () =
  with_temp (fun path ->
      Sys.remove path;
      let t = Fault.or_raise (Checkpoint.open_ path ~n_configs:4 ~workload:"mcf") in
      Checkpoint.append t
        [ { Checkpoint.e_index = 0; e_result = Ok (numbers 0) };
          { Checkpoint.e_index = 1; e_result = Ok (numbers 1) } ];
      Checkpoint.close t;
      (* simulate a kill mid-append: half a record, bad CRC *)
      let oc = open_out_gen [ Open_append ] 0o644 path in
      output_string oc "deadbeef ok 2 0x1.8p0 0x1.8";
      close_out oc;
      (match Checkpoint.load path with
      | Error ft -> Alcotest.failf "torn tail broke load: %s" (Fault.to_string ft)
      | Ok (_, _, entries) ->
        Alcotest.(check (list int)) "torn record dropped" [ 0; 1 ]
          (List.map (fun (e : Checkpoint.entry) -> e.e_index) entries));
      (* reopening for append after the torn tail still works *)
      let t = Fault.or_raise (Checkpoint.open_ path ~n_configs:4 ~workload:"mcf") in
      Checkpoint.close t)

let test_checkpoint_header_mismatch () =
  with_temp (fun path ->
      Sys.remove path;
      let t = Fault.or_raise (Checkpoint.open_ path ~n_configs:3 ~workload:"gcc") in
      Checkpoint.close t;
      match Checkpoint.open_ path ~n_configs:7 ~workload:"gcc" with
      | Ok t ->
        Checkpoint.close t;
        Alcotest.fail "accepted a checkpoint from a different sweep"
      | Error (Fault.Bad_input _) -> ()
      | Error ft -> Alcotest.failf "wrong fault: %s" (Fault.to_string ft))

let () =
  Alcotest.run "fault"
    [
      ( "crc32",
        [
          Alcotest.test_case "standard vectors" `Quick test_crc32_vectors;
          Alcotest.test_case "hex round-trip" `Quick test_crc32_hex_roundtrip;
        ] );
      ( "fault",
        [
          Alcotest.test_case "line round-trip" `Quick test_fault_line_roundtrip;
          Alcotest.test_case "timeout/overload exact round-trip" `Quick
            test_serving_faults_roundtrip_exactly;
        ] );
      ( "parallel",
        [
          Alcotest.test_case "per-item isolation" `Quick test_map_result_isolation;
          Alcotest.test_case "fault passthrough" `Quick
            test_map_result_passes_faults_through;
          QCheck_alcotest.to_alcotest prop_map_result_jobs_invariant;
        ] );
      ( "checkpoint",
        [
          Alcotest.test_case "round-trip" `Quick test_checkpoint_roundtrip;
          Alcotest.test_case "torn tail tolerated" `Quick test_checkpoint_torn_tail;
          Alcotest.test_case "header mismatch refused" `Quick
            test_checkpoint_header_mismatch;
        ] );
    ]
