(* Tests for the micro-architecture independent profiler: dependence
   chains (incl. the thesis' Fig 3.3 worked example), stride
   classification, cold statistics, sampling. *)

let uop ?(cls = Isa.Int_alu) ?(dep1 = 0) ?(dep2 = 0) ?(addr = 0) ?(taken = false)
    ?(static_id = 0) ?(begins = true) () =
  { Isa.cls; dep1; dep2; addr; taken; static_id; begins_instruction = begins }

(* Example 3.1 / Fig 3.2-3.3: the vector-sum loop.  Micro-ops:
   a MOV, b MOV, c MOV, d1 LD (dep c), e1 ADD (deps b, d1),
   f1 ADD (dep c), g1 BNE (dep f1), d2 LD (dep f1). *)
let example_3_1 =
  [|
    uop ~cls:Isa.Move ();
    uop ~cls:Isa.Move ();
    uop ~cls:Isa.Move ();
    uop ~cls:Isa.Load ~dep1:1 ();
    uop ~cls:Isa.Int_alu ~dep1:3 ~dep2:1 ();
    uop ~cls:Isa.Int_alu ~dep1:3 ();
    uop ~cls:Isa.Branch ~dep1:1 ();
    uop ~cls:Isa.Load ~dep1:2 ();
  |]

let test_fig_3_3_depths () =
  let depths = Dep_chains.window_depths example_3_1 ~lo:0 ~hi:8 in
  Alcotest.(check (array int)) "Fig 3.3 first window" [| 1; 1; 1; 2; 3; 2; 3; 3 |]
    depths

let test_fig_3_3_chain_stats () =
  let cs = Dep_chains.analyze ~rob_sizes:[| 8 |] example_3_1 in
  Alcotest.(check (float 1e-9)) "AP = 2" 2.0 cs.ap.(0);
  Alcotest.(check (float 1e-9)) "CP = 3" 3.0 cs.cp.(0);
  Alcotest.(check (float 1e-9)) "ABP = 3 (branch g1)" 3.0 cs.abp.(0)

let test_depths_ignore_out_of_window_producers () =
  let uops =
    [| uop (); uop ~dep1:1 (); uop ~dep1:1 (); uop ~dep1:1 () |]
  in
  (* window of 2 starting at index 2: producer of uop 2 is outside *)
  let depths = Dep_chains.window_depths uops ~lo:2 ~hi:4 in
  Alcotest.(check (array int)) "window-relative" [| 1; 2 |] depths

let test_serial_chain_critical_path () =
  let n = 16 in
  let uops = Array.init n (fun i -> uop ~dep1:(if i = 0 then 0 else 1) ()) in
  let cs = Dep_chains.analyze ~rob_sizes:[| n |] uops in
  Alcotest.(check (float 1e-9)) "fully serial CP = n" (float_of_int n) cs.cp.(0);
  let independent = Array.init n (fun _ -> uop ()) in
  let cs = Dep_chains.analyze ~rob_sizes:[| n |] independent in
  Alcotest.(check (float 1e-9)) "independent CP = 1" 1.0 cs.cp.(0)

let test_load_depth_distribution () =
  (* L1 -> alu -> L2 -> L3 (chained through dependences), plus one
     independent load. *)
  let uops =
    [|
      uop ~cls:Isa.Load ();           (* depth 1 *)
      uop ~cls:Isa.Int_alu ~dep1:1 ();
      uop ~cls:Isa.Load ~dep1:1 ();   (* depth 2 via the alu *)
      uop ~cls:Isa.Load ~dep1:1 ();   (* depth 3 *)
      uop ~cls:Isa.Load ();           (* depth 1 *)
    |]
  in
  let h = Dep_chains.load_depth_distribution ~window:16 uops in
  Alcotest.(check int) "depth-1 loads" 2 (Histogram.count h 1);
  Alcotest.(check int) "depth-2 loads" 1 (Histogram.count h 2);
  Alcotest.(check int) "depth-3 loads" 1 (Histogram.count h 3)

let test_chain_interpolation_matches_log () =
  let cs =
    {
      Profile.rob_sizes = [| 16; 64; 256 |];
      ap = [| 2.0; 3.0; 4.0 |];
      abp = [| 2.0; 3.0; 4.0 |];
      cp = [| 4.0; 6.0; 8.0 |];
      abp_windows = [| 1; 1; 1 |];
    }
  in
  Alcotest.(check (float 1e-9)) "exact at profiled size" 3.0
    (Profile.chain_at cs ~which:`Ap 64);
  (* 32 is the log-midpoint of 16 and 64 *)
  Alcotest.(check (float 1e-6)) "log midpoint" 2.5 (Profile.chain_at cs ~which:`Ap 32);
  (* CP interpolation between 64 and 256: log-midpoint at 128 *)
  Alcotest.(check (float 1e-6)) "cp midpoint" 7.0 (Profile.chain_at cs ~which:`Cp 128);
  (* clamping below/above the profiled range extrapolates the end segment *)
  Alcotest.(check bool) "small rob below first" true
    (Profile.chain_at cs ~which:`Ap 8 < 2.0)

(* ---- Stride classification ---- *)

let static_load ?(count = 10) strides =
  let h = Histogram.create () in
  List.iter (fun (s, c) -> Histogram.add h ~count:c s) strides;
  {
    Profile.sl_static_id = 1;
    sl_first_pos = 0;
    sl_count = count;
    sl_spacing = Histogram.create ();
    sl_strides = h;
    sl_reuse = Histogram.create ();
    sl_cold = 0;
    sl_stack = lazy (Statstack.of_reuse_histogram (Histogram.create ()));
  }

let test_stride_classification () =
  (match Stride_class.classify (static_load ~count:1 []) with
  | Stride_class.Unique -> ()
  | _ -> Alcotest.fail "single occurrence should be Unique");
  (match Stride_class.classify (static_load [ (8, 100) ]) with
  | Stride_class.Strided [ 8 ] -> ()
  | _ -> Alcotest.fail "pure stride should be 1-strided");
  (* 50/50 two strides: needs the 70% two-stride cutoff *)
  (match Stride_class.classify (static_load [ (4, 50); (8, 50) ]) with
  | Stride_class.Strided l when List.length l = 2 -> ()
  | _ -> Alcotest.fail "two equal strides should be 2-strided");
  (* many rare strides: random *)
  let spread = List.init 20 (fun i -> (i * 8, 5)) in
  match Stride_class.classify (static_load spread) with
  | Stride_class.Random_strided -> ()
  | _ -> Alcotest.fail "spread strides should be random"

let test_stride_cutoffs_prefer_simplest () =
  (* 65% one stride + noise: classified 1-strided even though 2 would
     also clear its cutoff. *)
  match Stride_class.classify (static_load [ (8, 65); (16, 20); (24, 15) ]) with
  | Stride_class.Strided [ 8 ] -> ()
  | Stride_class.Strided l ->
    Alcotest.failf "expected single stride, got %d" (List.length l)
  | _ -> Alcotest.fail "expected strided"

let test_fig_labels () =
  Alcotest.(check string) "unique" "UNIQUE"
    (Stride_class.fig_label (static_load ~count:1 []));
  Alcotest.(check string) "pure stride" "STRIDE"
    (Stride_class.fig_label (static_load [ (8, 100) ]));
  Alcotest.(check string) "filtered" "FILTER-1"
    (Stride_class.fig_label (static_load [ (8, 80); (64, 12); (-8, 8) ]));
  Alcotest.(check string) "random" "RANDOM"
    (Stride_class.fig_label (static_load (List.init 20 (fun i -> (i * 8, 5)))))

let test_cutoffs_are_papers () =
  Alcotest.(check (array (float 1e-9))) "60/70/80/90" [| 0.6; 0.7; 0.8; 0.9 |]
    Stride_class.cutoffs

(* ---- End-to-end profiling ---- *)

let profile_of name n =
  Profiler.profile (Benchmarks.find name) ~seed:1 ~n_instructions:n

let test_profile_structure () =
  let p = profile_of "astar" 50_000 in
  Alcotest.(check int) "micro-trace count" 5 (Array.length p.p_microtraces);
  Array.iter
    (fun (mt : Profile.microtrace) ->
      Alcotest.(check int) "instructions per trace" 1000 mt.mt_instructions;
      Alcotest.(check bool) "uops >= instructions" true
        (mt.mt_uops >= mt.mt_instructions);
      Alcotest.(check int) "mix total = uops" mt.mt_uops
        (Isa.Class_counts.total mt.mt_mix))
    p.p_microtraces;
  Alcotest.(check bool) "entropy in [0,1]" true
    (p.p_entropy >= 0.0 && p.p_entropy <= 1.0);
  Alcotest.(check bool) "uops/instr > 1" true (p.p_uops_per_instruction > 1.0)

let test_profile_chain_invariants () =
  let p = profile_of "mcf" 50_000 in
  Array.iter
    (fun (mt : Profile.microtrace) ->
      let cs = mt.Profile.mt_chains in
      Array.iteri
        (fun i rob ->
          Alcotest.(check bool) "AP <= CP" true (cs.ap.(i) <= cs.cp.(i) +. 1e-9);
          Alcotest.(check bool) "CP <= rob" true (cs.cp.(i) <= float_of_int rob);
          Alcotest.(check bool) "AP >= 1" true (cs.ap.(i) >= 1.0))
        cs.rob_sizes)
    p.p_microtraces

let test_profile_determinism () =
  let p1 = profile_of "gcc" 30_000 and p2 = profile_of "gcc" 30_000 in
  Alcotest.(check (float 1e-12)) "entropy equal" p1.p_entropy p2.p_entropy;
  Alcotest.(check int) "same uop totals"
    (Isa.Class_counts.total (Profile.total_mix p1))
    (Isa.Class_counts.total (Profile.total_mix p2))

let test_sampled_mix_close_to_full () =
  (* Fig 5.2: sampling error per micro-op category stays small. *)
  let name = "bzip2" in
  let n = 100_000 in
  let p = profile_of name n in
  let sampled = Profile.total_mix p in
  let full = Profiler.full_instruction_mix (Benchmarks.find name) ~seed:1
      ~n_instructions:n in
  let st = float_of_int (Isa.Class_counts.total sampled) in
  let ft = float_of_int (Isa.Class_counts.total full) in
  List.iter
    (fun cls ->
      let s = float_of_int (Isa.Class_counts.get sampled cls) /. st in
      let f = float_of_int (Isa.Class_counts.get full cls) /. ft in
      Alcotest.(check bool)
        (Isa.class_to_string cls ^ " within 2%")
        true
        (Float.abs (s -. f) < 0.02))
    Isa.all_classes

let test_sampled_chains_close_to_full () =
  (* Fig 5.5: dependence chains from micro-traces track the unsampled
     profile. *)
  let spec = Benchmarks.find "hmmer" in
  let full = Profiler.full_chains ~rob_sizes:[| 128 |] spec ~seed:1
      ~n_instructions:30_000 in
  let p =
    Profiler.profile spec ~seed:1 ~n_instructions:30_000
  in
  let sampled_cp = Profile.mean_chain p ~which:`Cp ~rob:128 in
  let rel = Float.abs (sampled_cp -. full.cp.(0)) /. full.cp.(0) in
  Alcotest.(check bool)
    (Printf.sprintf "CP sampling error %.1f%% < 15%%" (100. *. rel))
    true (rel < 0.15)

let test_inst_cold_rate_is_exact () =
  (* Finite code: cold instruction lines = static footprint, counted once
     regardless of sampling. *)
  let p = profile_of "gamess" 100_000 in
  Alcotest.(check bool) "tiny exact inst cold rate" true
    (p.p_inst_cold_fraction < 0.005)

let test_cold_correction_bounds () =
  List.iter
    (fun name ->
      let p = profile_of name 50_000 in
      let c = Profile.cold_correction p in
      Alcotest.(check bool) (name ^ " correction in (0, 2]") true (c > 0.0 && c <= 2.0))
    [ "gamess"; "lbm"; "mcf" ]

let test_mem_sample_accounting () =
  let p = profile_of "milc" 50_000 in
  Array.iter
    (fun (mt : Profile.microtrace) ->
      let loads = Isa.Class_counts.get mt.mt_mix Isa.Load in
      let stores = Isa.Class_counts.get mt.mt_mix Isa.Store in
      Alcotest.(check int) "samples = loads + stores" (loads + stores)
        mt.mt_mem_samples;
      let recorded =
        Histogram.total mt.mt_reuse_load + Histogram.total mt.mt_reuse_store
        + mt.mt_mem_cold
      in
      Alcotest.(check int) "reuse + cold = samples" mt.mt_mem_samples recorded)
    p.p_microtraces

let test_static_loads_recorded () =
  let p = profile_of "libquantum" 20_000 in
  let mt = p.p_microtraces.(1) in
  Alcotest.(check bool) "has static loads" true (mt.mt_static_loads <> []);
  List.iter
    (fun (sl : Profile.static_load) ->
      Alcotest.(check bool) "count >= 1" true (sl.sl_count >= 1);
      Alcotest.(check int) "strides = count - 1" (sl.sl_count - 1)
        (Histogram.total sl.sl_strides);
      Alcotest.(check bool) "first pos within trace" true
        (sl.sl_first_pos >= 0 && sl.sl_first_pos < mt.mt_uops))
    mt.mt_static_loads

let test_libquantum_is_stride_dominated () =
  (* Fig 4.7: libquantum's loads are overwhelmingly single-strided. *)
  let p = profile_of "libquantum" 50_000 in
  let strided = ref 0 and other = ref 0 in
  Array.iter
    (fun (mt : Profile.microtrace) ->
      List.iter
        (fun sl ->
          match Stride_class.classify sl with
          | Stride_class.Strided _ -> strided := !strided + sl.Profile.sl_count
          | _ -> other := !other + sl.Profile.sl_count)
        mt.mt_static_loads)
    p.p_microtraces;
  Alcotest.(check bool) "mostly strided" true
    (float_of_int !strided > 3.0 *. float_of_int !other)

let test_cold_stats_consistency () =
  let p = profile_of "omnetpp" 30_000 in
  Array.iter
    (fun (mt : Profile.microtrace) ->
      let c = mt.Profile.mt_cold in
      Array.iteri
        (fun i _ ->
          Alcotest.(check bool) "hit windows <= windows" true
            (c.cold_windows_hit.(i) <= c.cold_windows.(i));
          Alcotest.(check bool) "total >= hit windows" true
            (c.cold_total.(i) >= c.cold_windows_hit.(i)))
        c.cold_rob_sizes)
    p.p_microtraces

let prop_chain_at_positive =
  QCheck.Test.make ~name:"interpolated chains stay positive" ~count:50
    QCheck.(int_range 2 512)
    (fun rob ->
      let cs =
        {
          Profile.rob_sizes = [| 16; 32; 64; 128; 256 |];
          ap = [| 1.5; 1.8; 2.2; 2.5; 2.9 |];
          abp = [| 1.2; 1.5; 1.9; 2.2; 2.4 |];
          cp = [| 3.0; 4.1; 5.5; 7.2; 9.0 |];
          abp_windows = [| 1; 1; 1; 1; 1 |];
        }
      in
      Profile.chain_at cs ~which:`Cp rob > 0.0
      && Profile.chain_at cs ~which:`Ap rob > 0.0)

(* ---- Profile serialization ---- *)

let profiles_equal (a : Profile.t) (b : Profile.t) =
  (* Structural comparison that ignores lazies and histogram ids. *)
  let hist_eq x y = Histogram.to_sorted_list x = Histogram.to_sorted_list y in
  let static_eq (x : Profile.static_load) (y : Profile.static_load) =
    x.sl_static_id = y.sl_static_id && x.sl_first_pos = y.sl_first_pos
    && x.sl_count = y.sl_count && x.sl_cold = y.sl_cold
    && hist_eq x.sl_spacing y.sl_spacing
    && hist_eq x.sl_strides y.sl_strides
    && hist_eq x.sl_reuse y.sl_reuse
  in
  let sort_statics l =
    List.sort (fun (x : Profile.static_load) y -> compare x.sl_static_id y.sl_static_id) l
  in
  let mt_eq (x : Profile.microtrace) (y : Profile.microtrace) =
    x.mt_index = y.mt_index && x.mt_start_instruction = y.mt_start_instruction
    && x.mt_instructions = y.mt_instructions && x.mt_uops = y.mt_uops
    && x.mt_branches = y.mt_branches && x.mt_mem_samples = y.mt_mem_samples
    && x.mt_mem_cold = y.mt_mem_cold && x.mt_store_cold = y.mt_store_cold
    && Isa.Class_counts.to_list x.mt_mix = Isa.Class_counts.to_list y.mt_mix
    && x.mt_chains.rob_sizes = y.mt_chains.rob_sizes
    && x.mt_chains.ap = y.mt_chains.ap && x.mt_chains.abp = y.mt_chains.abp
    && x.mt_chains.cp = y.mt_chains.cp
    && x.mt_chains.abp_windows = y.mt_chains.abp_windows
    && hist_eq x.mt_load_depth y.mt_load_depth
    && hist_eq x.mt_reuse_load y.mt_reuse_load
    && hist_eq x.mt_reuse_store y.mt_reuse_store
    && x.mt_cold = y.mt_cold
    && List.length x.mt_static_loads = List.length y.mt_static_loads
    && List.for_all2 static_eq (sort_statics x.mt_static_loads)
         (sort_statics y.mt_static_loads)
  in
  a.p_workload = b.p_workload
  && a.p_window_instructions = b.p_window_instructions
  && a.p_microtrace_instructions = b.p_microtrace_instructions
  && a.p_total_instructions = b.p_total_instructions
  && a.p_line_bytes = b.p_line_bytes
  && a.p_entropy = b.p_entropy
  && a.p_branch_fraction = b.p_branch_fraction
  && a.p_uops_per_instruction = b.p_uops_per_instruction
  && a.p_inst_cold_fraction = b.p_inst_cold_fraction
  && a.p_inst_samples = b.p_inst_samples
  && a.p_data_accesses = b.p_data_accesses
  && a.p_data_cold = b.p_data_cold
  && hist_eq a.p_reuse_inst b.p_reuse_inst
  && Array.length a.p_microtraces = Array.length b.p_microtraces
  && Array.for_all2 mt_eq a.p_microtraces b.p_microtraces

let test_profile_io_roundtrip () =
  let p = profile_of "milc" 30_000 in
  let restored = Fault.or_raise (Profile_io.of_string (Profile_io.to_string p)) in
  Alcotest.(check bool) "round-trip preserves everything" true
    (profiles_equal p restored)

let test_profile_io_same_predictions () =
  let p = profile_of "astar" 30_000 in
  let restored = Fault.or_raise (Profile_io.of_string (Profile_io.to_string p)) in
  let a = Interval_model.predict Uarch.reference p in
  let b = Interval_model.predict Uarch.reference restored in
  Alcotest.(check (float 1e-9)) "identical prediction" a.pr_cycles b.pr_cycles

let test_profile_io_file_roundtrip () =
  let p = profile_of "hmmer" 20_000 in
  let path = Filename.temp_file "mipp" ".profile" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Profile_io.save path p;
      let restored = Fault.or_raise (Profile_io.load path) in
      Alcotest.(check bool) "file round-trip" true (profiles_equal p restored))

let expect_bad_input what = function
  | Ok _ -> Alcotest.failf "accepted %s" what
  | Error (Fault.Bad_input _) -> ()
  | Error ft ->
    Alcotest.failf "%s rejected with the wrong fault kind: %s" what
      (Fault.to_string ft)

let test_profile_io_rejects_garbage () =
  expect_bad_input "garbage" (Profile_io.of_string "not a profile");
  match Profile_io.of_string "mipp-profile 999\n" with
  | Ok _ -> Alcotest.fail "accepted wrong version"
  | Error ft ->
    Alcotest.(check bool) "mentions newer version" true
      (let msg = Fault.to_string ft in
       let rec contains i =
         i + 5 <= String.length msg && (String.sub msg i 5 = "newer" || contains (i + 1))
       in
       contains 0)

let test_profile_io_rejects_truncation () =
  let p = profile_of "povray" 20_000 in
  let s = Profile_io.to_string p in
  let truncated = String.sub s 0 (String.length s / 2) in
  expect_bad_input "truncated profile" (Profile_io.of_string truncated)

let test_profile_io_rejects_bit_flip () =
  (* Any single byte flip must trip the whole-file checksum. *)
  let p = profile_of "bzip2" 20_000 in
  let s = Bytes.of_string (Profile_io.to_string p) in
  let positions = [ 20; Bytes.length s / 2; Bytes.length s - 20 ] in
  List.iter
    (fun i ->
      let orig = Bytes.get s i in
      let flipped = Char.chr (Char.code orig lxor 0x04) in
      if flipped <> '\n' && orig <> '\n' then begin
        Bytes.set s i flipped;
        expect_bad_input
          (Printf.sprintf "byte flip at %d" i)
          (Profile_io.of_string (Bytes.to_string s));
        Bytes.set s i orig
      end)
    positions

let test_profile_io_validates_semantics () =
  (* A structurally well-formed file with impossible numbers must be
     rejected by the validation pass, not accepted silently.  Flip the
     whole-run branch fraction to 2.0 and re-checksum so only semantic
     validation can catch it. *)
  let p = profile_of "gcc" 20_000 in
  let doctored = { p with p_branch_fraction = 2.0 } in
  expect_bad_input "impossible branch fraction"
    (Profile_io.of_string (Profile_io.to_string doctored))

(* ---- Binary (version 3) format ---- *)

let test_binary_roundtrip () =
  let p = profile_of "milc" 30_000 in
  let s = Profile_io.to_binary_string p in
  Alcotest.(check bool) "binary is smaller than text" true
    (String.length s < String.length (Profile_io.to_string p));
  let restored = Fault.or_raise (Profile_io.of_string s) in
  Alcotest.(check bool) "binary round-trip preserves everything" true
    (profiles_equal p restored)

let test_binary_file_roundtrip () =
  let p = profile_of "hmmer" 20_000 in
  let path = Filename.temp_file "mipp" ".profile" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Profile_io.save ~binary:true path p;
      let restored = Fault.or_raise (Profile_io.load path) in
      Alcotest.(check bool) "binary file round-trip" true
        (profiles_equal p restored))

let test_binary_same_predictions () =
  let p = profile_of "astar" 30_000 in
  let restored =
    Fault.or_raise (Profile_io.of_string (Profile_io.to_binary_string p))
  in
  let a = Interval_model.predict Uarch.reference p in
  let b = Interval_model.predict Uarch.reference restored in
  Alcotest.(check (float 1e-9)) "identical prediction" a.pr_cycles b.pr_cycles

let test_binary_rejects_bit_flip () =
  (* The CRC trailer covers every payload byte, so any flip must be
     caught — there is no line structure to hide behind. *)
  let p = profile_of "bzip2" 20_000 in
  let s = Bytes.of_string (Profile_io.to_binary_string p) in
  List.iter
    (fun i ->
      let orig = Bytes.get s i in
      Bytes.set s i (Char.chr (Char.code orig lxor 0x01));
      expect_bad_input
        (Printf.sprintf "binary byte flip at %d" i)
        (Profile_io.of_string (Bytes.to_string s));
      Bytes.set s i orig)
    [ 8; Bytes.length s / 2; Bytes.length s - 2 ]

let test_binary_rejects_truncation () =
  let p = profile_of "povray" 20_000 in
  let s = Profile_io.to_binary_string p in
  List.iter
    (fun n ->
      expect_bad_input
        (Printf.sprintf "binary truncated to %d bytes" n)
        (Profile_io.of_string (String.sub s 0 n)))
    [ 0; 3; 16; String.length s / 2; String.length s - 1 ]

let prop_binary_corruption_total =
  let base = lazy (Profile_io.to_binary_string (profile_of "gcc" 20_000)) in
  QCheck.Test.make ~name:"corrupt binary profiles never escape the result type"
    ~count:120
    QCheck.(triple bool (int_bound 100_000) (int_bound 255))
    (fun (truncate, pos, byte) ->
      let s = Lazy.force base in
      let n = String.length s in
      let corrupted =
        if truncate then String.sub s 0 (pos mod n)
        else begin
          let b = Bytes.of_string s in
          Bytes.set b (pos mod n) (Char.chr byte);
          Bytes.to_string b
        end
      in
      match Profile_io.of_string corrupted with
      | Ok _ | Error _ -> true
      | exception e ->
        QCheck.Test.fail_reportf "of_string raised %s" (Printexc.to_string e))

(* Corruption fuzzer: no corruption — truncation anywhere, any byte
   overwritten, whole lines deleted — may crash, hang, or be silently
   accepted as a different profile.  The only acceptable outcomes are a
   structured [Error _] or (for corruptions the format cannot see, e.g.
   a no-op overwrite) a successful parse. *)
let prop_profile_io_corruption_total =
  let base = lazy (Profile_io.to_string (profile_of "gcc" 20_000)) in
  QCheck.Test.make ~name:"corrupt profiles never escape the result type"
    ~count:120
    QCheck.(triple (int_range 0 2) (int_bound 10_000) (int_bound 255))
    (fun (mode, pos, byte) ->
      let s = Lazy.force base in
      let n = String.length s in
      let corrupted =
        match mode with
        | 0 -> String.sub s 0 (pos mod n) (* truncate *)
        | 1 ->
          (* overwrite one byte *)
          let b = Bytes.of_string s in
          Bytes.set b (pos mod n) (Char.chr byte);
          Bytes.to_string b
        | _ ->
          (* delete one line *)
          let lines = String.split_on_char '\n' s in
          let k = pos mod List.length lines in
          String.concat "\n" (List.filteri (fun i _ -> i <> k) lines)
      in
      match Profile_io.of_string corrupted with
      | Ok _ | Error _ -> true
      | exception e ->
        QCheck.Test.fail_reportf "of_string raised %s" (Printexc.to_string e))

(* ---- Sharded profiling ---- *)

let test_shard_jobs1_bit_identical () =
  (* The sharded pipeline at jobs:1 must be the legacy sequential
     profiler, down to the serialized byte. *)
  let spec = Benchmarks.find "gcc" in
  let legacy = Profiler.profile_legacy spec ~seed:1 ~n_instructions:50_000 in
  let sharded = Profiler.profile spec ~jobs:1 ~seed:1 ~n_instructions:50_000 in
  Alcotest.(check bool) "bit-identical serialization" true
    (Profile_io.to_string sharded = Profile_io.to_string legacy)

let prop_shard_unbounded_warmup_exact =
  (* With an unbounded warm-up every shard replays the full stream prefix
     before recording, so the merged histograms, entropy and counters must
     equal the single-stream profile exactly — for any shard count and any
     stream length (window-aligned or not). *)
  QCheck.Test.make ~name:"merged shards = single stream when warm-up unbounded"
    ~count:8
    QCheck.(pair (int_range 2 5) (int_range 15_000 45_000))
    (fun (k, n) ->
      let spec = Benchmarks.find "mcf" in
      let legacy = Profiler.profile_legacy spec ~seed:3 ~n_instructions:n in
      let sharded =
        Profiler.profile spec ~jobs:k ~warmup:max_int ~seed:3 ~n_instructions:n
      in
      Profile_io.to_string sharded = Profile_io.to_string legacy)

let test_shard_merge_renumbering () =
  (* Bounded warm-up: classifications at shard boundaries may shift, but
     the merged profile's structure must be intact — microtrace indices
     renumbered 0..n-1 in stream order, sampling grid unmoved, totals
     preserved. *)
  let n = 50_000 in
  let spec = Benchmarks.find "astar" in
  let p = Profiler.profile spec ~jobs:3 ~seed:1 ~n_instructions:n in
  Alcotest.(check int) "microtrace count" 5 (Array.length p.p_microtraces);
  Alcotest.(check int) "total instructions" n p.p_total_instructions;
  Array.iteri
    (fun i (mt : Profile.microtrace) ->
      Alcotest.(check int) "renumbered index" i mt.mt_index;
      Alcotest.(check int) "sampling grid position"
        (i * p.p_window_instructions) mt.mt_start_instruction;
      let recorded =
        Histogram.total mt.mt_reuse_load + Histogram.total mt.mt_reuse_store
        + mt.mt_mem_cold
      in
      Alcotest.(check int) "reuse + cold = samples" mt.mt_mem_samples recorded)
    p.p_microtraces

let test_shard_bounded_warmup_invariants () =
  (* Warm-up length changes only reuse/cold classification near shard
     boundaries: sample counts, totals and the sampling grid are
     warm-up-independent, and losing history can only inflate cold
     rates, never deflate them. *)
  let n = 60_000 in
  let spec = Benchmarks.find "gcc" in
  let legacy = Profiler.profile_legacy spec ~seed:1 ~n_instructions:n in
  let sharded = Profiler.profile spec ~jobs:4 ~seed:1 ~n_instructions:n in
  Alcotest.(check int) "total instructions" legacy.p_total_instructions
    sharded.p_total_instructions;
  Alcotest.(check int) "microtrace count"
    (Array.length legacy.p_microtraces)
    (Array.length sharded.p_microtraces);
  Alcotest.(check int) "inst samples" legacy.p_inst_samples
    sharded.p_inst_samples;
  Alcotest.(check int) "data accesses" legacy.p_data_accesses
    sharded.p_data_accesses;
  Alcotest.(check (float 1e-12)) "uops per instruction"
    legacy.p_uops_per_instruction sharded.p_uops_per_instruction;
  Alcotest.(check bool) "cold rate only inflates" true
    (Profile.cold_miss_rate sharded >= Profile.cold_miss_rate legacy -. 1e-12);
  Alcotest.(check bool) "data cold only inflates" true
    (sharded.p_data_cold >= legacy.p_data_cold)

let test_shard_rejects_bad_args () =
  let spec = Benchmarks.find "gcc" in
  Alcotest.check_raises "jobs 0"
    (Invalid_argument "Profiler.profile: jobs must be >= 1") (fun () ->
      ignore (Profiler.profile spec ~jobs:0 ~seed:1 ~n_instructions:1000));
  Alcotest.check_raises "negative warmup"
    (Invalid_argument "Profiler.profile: warmup must be >= 0") (fun () ->
      ignore (Profiler.profile spec ~warmup:(-1) ~seed:1 ~n_instructions:1000))

let () =
  Alcotest.run "profiler"
    [
      ( "dep_chains",
        [
          Alcotest.test_case "Fig 3.3 depths" `Quick test_fig_3_3_depths;
          Alcotest.test_case "Fig 3.3 AP/ABP/CP" `Quick test_fig_3_3_chain_stats;
          Alcotest.test_case "window boundaries" `Quick
            test_depths_ignore_out_of_window_producers;
          Alcotest.test_case "serial vs independent" `Quick
            test_serial_chain_critical_path;
          Alcotest.test_case "load depth distribution" `Quick
            test_load_depth_distribution;
          Alcotest.test_case "log interpolation" `Quick
            test_chain_interpolation_matches_log;
          QCheck_alcotest.to_alcotest prop_chain_at_positive;
        ] );
      ( "stride_class",
        [
          Alcotest.test_case "classification" `Quick test_stride_classification;
          Alcotest.test_case "prefers simplest" `Quick
            test_stride_cutoffs_prefer_simplest;
          Alcotest.test_case "fig labels" `Quick test_fig_labels;
          Alcotest.test_case "paper cutoffs" `Quick test_cutoffs_are_papers;
        ] );
      ( "profile_io",
        [
          Alcotest.test_case "string round-trip" `Quick test_profile_io_roundtrip;
          Alcotest.test_case "identical predictions" `Quick
            test_profile_io_same_predictions;
          Alcotest.test_case "file round-trip" `Quick test_profile_io_file_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick test_profile_io_rejects_garbage;
          Alcotest.test_case "rejects truncation" `Quick
            test_profile_io_rejects_truncation;
          Alcotest.test_case "rejects byte flips" `Quick
            test_profile_io_rejects_bit_flip;
          Alcotest.test_case "validates semantics" `Quick
            test_profile_io_validates_semantics;
          QCheck_alcotest.to_alcotest prop_profile_io_corruption_total;
          Alcotest.test_case "binary round-trip" `Quick test_binary_roundtrip;
          Alcotest.test_case "binary file round-trip" `Quick
            test_binary_file_roundtrip;
          Alcotest.test_case "binary identical predictions" `Quick
            test_binary_same_predictions;
          Alcotest.test_case "binary rejects byte flips" `Quick
            test_binary_rejects_bit_flip;
          Alcotest.test_case "binary rejects truncation" `Quick
            test_binary_rejects_truncation;
          QCheck_alcotest.to_alcotest prop_binary_corruption_total;
        ] );
      ( "profiling",
        [
          Alcotest.test_case "structure" `Quick test_profile_structure;
          Alcotest.test_case "chain invariants" `Quick test_profile_chain_invariants;
          Alcotest.test_case "determinism" `Quick test_profile_determinism;
          Alcotest.test_case "sampled mix vs full (Fig 5.2)" `Quick
            test_sampled_mix_close_to_full;
          Alcotest.test_case "sampled chains vs full (Fig 5.5)" `Quick
            test_sampled_chains_close_to_full;
          Alcotest.test_case "exact inst cold rate" `Quick test_inst_cold_rate_is_exact;
          Alcotest.test_case "cold correction bounds" `Quick
            test_cold_correction_bounds;
          Alcotest.test_case "memory sample accounting" `Quick
            test_mem_sample_accounting;
          Alcotest.test_case "static loads" `Quick test_static_loads_recorded;
          Alcotest.test_case "libquantum stride-dominated (Fig 4.7)" `Quick
            test_libquantum_is_stride_dominated;
          Alcotest.test_case "cold stats consistency" `Quick
            test_cold_stats_consistency;
        ] );
      ( "sharding",
        [
          Alcotest.test_case "jobs:1 bit-identical to legacy" `Quick
            test_shard_jobs1_bit_identical;
          QCheck_alcotest.to_alcotest prop_shard_unbounded_warmup_exact;
          Alcotest.test_case "merge renumbers microtraces" `Quick
            test_shard_merge_renumbering;
          Alcotest.test_case "bounded warm-up invariants" `Quick
            test_shard_bounded_warmup_invariants;
          Alcotest.test_case "rejects bad arguments" `Quick
            test_shard_rejects_bad_args;
        ] );
    ]
