(* Tests for the analytical power model. *)

let activity ?(cycles = 1e6) ?(uops = 2e6) () =
  {
    Power.a_cycles = cycles;
    a_uops = uops;
    a_uops_by_class =
      (let a = Array.make Isa.n_classes 0.0 in
       a.(Isa.class_index Isa.Int_alu) <- uops *. 0.5;
       a.(Isa.class_index Isa.Load) <- uops *. 0.3;
       a.(Isa.class_index Isa.Store) <- uops *. 0.1;
       a.(Isa.class_index Isa.Branch) <- uops *. 0.1;
       a);
    a_l1i_accesses = uops /. 1.2;
    a_l1d_accesses = uops *. 0.4;
    a_l2_accesses = uops *. 0.02;
    a_l3_accesses = uops *. 0.005;
    a_dram_accesses = uops *. 0.001;
    a_branch_lookups = uops *. 0.1;
  }

let test_reference_power_band () =
  let b = Power.estimate Uarch.reference (activity ()) in
  Alcotest.(check bool)
    (Printf.sprintf "total %.1f W in [5, 60]" b.total_watts)
    true
    (b.total_watts > 5.0 && b.total_watts < 60.0);
  Alcotest.(check bool) "static share 20-60%" true
    (b.static_watts /. b.total_watts > 0.2 && b.static_watts /. b.total_watts < 0.6)

let test_breakdown_sums () =
  let b = Power.estimate Uarch.reference (activity ()) in
  let sum = List.fold_left (fun a (_, w) -> a +. w) 0.0 b.components in
  Alcotest.(check (float 1e-9)) "components sum to total" b.total_watts sum;
  Alcotest.(check (float 1e-9)) "static+dynamic = total" b.total_watts
    (b.static_watts +. b.dynamic_watts);
  Alcotest.(check int) "all components present" (List.length Power.all_components)
    (List.length b.components)

let test_zero_activity_is_static_only () =
  let b = Power.estimate Uarch.reference Power.zero_activity in
  Alcotest.(check (float 1e-9)) "dynamic zero" 0.0 b.dynamic_watts;
  Alcotest.(check bool) "static positive" true (b.static_watts > 0.0)

let test_more_activity_more_power () =
  let low = Power.estimate Uarch.reference (activity ~uops:1e6 ()) in
  let high = Power.estimate Uarch.reference (activity ~uops:4e6 ()) in
  Alcotest.(check bool) "dynamic scales with activity" true
    (high.dynamic_watts > low.dynamic_watts)

let test_vdd_scaling () =
  let hi = Uarch.with_dvfs Uarch.reference ~freq_ghz:2.66 ~vdd:1.1 in
  let lo = Uarch.with_dvfs Uarch.reference ~freq_ghz:2.66 ~vdd:0.7 in
  let bh = Power.estimate hi (activity ()) in
  let bl = Power.estimate lo (activity ()) in
  Alcotest.(check bool) "higher Vdd, more static" true (bh.static_watts > bl.static_watts);
  Alcotest.(check bool) "higher Vdd, more dynamic" true
    (bh.dynamic_watts > bl.dynamic_watts)

let test_bigger_structures_leak_more () =
  let small = List.nth Uarch.design_space 0 in
  let big = List.nth Uarch.design_space 242 in
  let bs = Power.estimate small Power.zero_activity in
  let bb = Power.estimate big Power.zero_activity in
  Alcotest.(check bool) "bigger design leaks more" true
    (bb.static_watts > bs.static_watts)

let test_frequency_raises_dynamic_power () =
  (* Same work in fewer seconds: average dynamic power rises. *)
  let slow = Uarch.with_dvfs Uarch.reference ~freq_ghz:1.33 ~vdd:0.9 in
  let fast = Uarch.with_dvfs Uarch.reference ~freq_ghz:2.66 ~vdd:0.9 in
  let a = activity () in
  let bs = Power.estimate slow a and bf = Power.estimate fast a in
  Alcotest.(check bool) "2x frequency ~2x dynamic" true
    (Float.abs ((bf.dynamic_watts /. bs.dynamic_watts) -. 2.0) < 0.01)

let test_energy_and_ed2p () =
  let u = Uarch.reference in
  let b = Power.estimate u (activity ()) in
  let cycles = 1e6 in
  let seconds = Power.seconds_of_cycles u cycles in
  Alcotest.(check (float 1e-12)) "seconds" (1e6 /. 2.66e9) seconds;
  let e = Power.energy_joules u b ~cycles in
  Alcotest.(check (float 1e-9)) "E = P*t" (b.total_watts *. seconds) e;
  let ed2p = Power.ed2p u b ~cycles in
  Alcotest.(check (float 1e-15)) "ED2P = E*t^2" (e *. seconds *. seconds) ed2p

let test_component_names_unique () =
  let names = List.map Power.component_to_string Power.all_components in
  Alcotest.(check int) "unique" (List.length names)
    (List.length (List.sort_uniq compare names))

let prop_power_positive =
  QCheck.Test.make ~name:"power always positive across design space" ~count:50
    QCheck.(int_range 0 242)
    (fun i ->
      let u = List.nth Uarch.design_space i in
      let b = Power.estimate u (activity ()) in
      b.total_watts > 0.0 && b.static_watts > 0.0
      && List.for_all (fun (_, w) -> w >= 0.0) b.components)

(* ---- Property suite: monotonicity and conservation laws ---- *)

(* Same work at a higher frequency is the same energy in less time:
   average dynamic power — and with static untouched by frequency,
   total power — can only go up. *)
let prop_power_monotone_in_frequency =
  QCheck.Test.make ~name:"power is monotone in frequency (fixed activity)"
    ~count:100
    QCheck.(pair (float_range 0.5 4.0) (float_range 0.01 2.0))
    (fun (f_lo, df) ->
      let at f = Uarch.with_dvfs Uarch.reference ~freq_ghz:f ~vdd:0.9 in
      let a = activity () in
      let lo = Power.estimate (at f_lo) a in
      let hi = Power.estimate (at (f_lo +. df)) a in
      hi.dynamic_watts >= lo.dynamic_watts
      && hi.total_watts >= lo.total_watts
      && Float.abs (hi.static_watts -. lo.static_watts)
         <= 1e-9 *. Float.max 1.0 lo.static_watts)

let prop_power_monotone_in_vdd =
  QCheck.Test.make ~name:"power is monotone in Vdd (static and dynamic)"
    ~count:100
    QCheck.(pair (float_range 0.5 1.2) (float_range 0.01 0.4))
    (fun (v_lo, dv) ->
      let at v = Uarch.with_dvfs Uarch.reference ~freq_ghz:2.66 ~vdd:v in
      let a = activity () in
      let lo = Power.estimate (at v_lo) a in
      let hi = Power.estimate (at (v_lo +. dv)) a in
      hi.static_watts >= lo.static_watts
      && hi.dynamic_watts >= lo.dynamic_watts
      && hi.total_watts >= lo.total_watts)

let prop_breakdown_sums_everywhere =
  QCheck.Test.make
    ~name:"stacked components sum to total across the design space" ~count:100
    QCheck.(pair (int_range 0 242) (float_range 0.1 10.0))
    (fun (i, scale) ->
      let u = List.nth Uarch.design_space i in
      let b = Power.estimate u (activity ~uops:(2e6 *. scale) ()) in
      let sum = List.fold_left (fun a (_, w) -> a +. w) 0.0 b.components in
      Float.abs (sum -. b.total_watts) <= 1e-9 *. Float.max 1.0 b.total_watts
      && Float.abs ((b.static_watts +. b.dynamic_watts) -. b.total_watts)
         <= 1e-9 *. Float.max 1.0 b.total_watts)

(* The model's predicted activity must be physical: per-level access
   ratios (the activity factors feeding the cache/DRAM energies) in
   [0, 1] down the hierarchy, and dispatched micro-ops bounded by the
   dispatch width every cycle. *)
let model_activity =
  let profile =
    lazy
      (Profiler.profile (Benchmarks.find "gcc") ~seed:1 ~n_instructions:20_000)
  in
  fun i ->
    let u = List.nth Uarch.design_space i in
    (u, (Interval_model.predict u (Lazy.force profile)).pr_activity)

let prop_predicted_activity_factors_physical =
  QCheck.Test.make
    ~name:"predicted activity factors lie in [0,1] down the hierarchy"
    ~count:30
    QCheck.(int_range 0 242)
    (fun i ->
      let u, a = model_activity i in
      let ratio num den = if den <= 0.0 then 0.0 else num /. den in
      let in_unit r = r >= 0.0 && r <= 1.0 +. 1e-9 in
      a.a_cycles > 0.0 && a.a_uops > 0.0
      && in_unit (ratio a.a_l2_accesses (a.a_l1d_accesses +. a.a_l1i_accesses))
      && in_unit (ratio a.a_l3_accesses a.a_l2_accesses)
      && in_unit (ratio a.a_dram_accesses a.a_l3_accesses)
      && in_unit (ratio a.a_branch_lookups a.a_uops)
      && ratio a.a_uops a.a_cycles
         <= float_of_int u.Uarch.core.dispatch_width +. 1e-9)

let () =
  Alcotest.run "power"
    [
      ( "power",
        [
          Alcotest.test_case "reference band" `Quick test_reference_power_band;
          Alcotest.test_case "breakdown sums" `Quick test_breakdown_sums;
          Alcotest.test_case "zero activity" `Quick test_zero_activity_is_static_only;
          Alcotest.test_case "activity scaling" `Quick test_more_activity_more_power;
          Alcotest.test_case "vdd scaling" `Quick test_vdd_scaling;
          Alcotest.test_case "structure leakage" `Quick test_bigger_structures_leak_more;
          Alcotest.test_case "frequency scaling" `Quick
            test_frequency_raises_dynamic_power;
          Alcotest.test_case "energy and ED2P" `Quick test_energy_and_ed2p;
          Alcotest.test_case "component names" `Quick test_component_names_unique;
          QCheck_alcotest.to_alcotest prop_power_positive;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_power_monotone_in_frequency;
          QCheck_alcotest.to_alcotest prop_power_monotone_in_vdd;
          QCheck_alcotest.to_alcotest prop_breakdown_sums_everywhere;
          QCheck_alcotest.to_alcotest prop_predicted_activity_factors_physical;
        ] );
    ]
